#include "cute/int_tuple.h"

#include <sstream>

#include "support/diagnostics.h"

namespace ll {
namespace cute {

IntTuple::IntTuple(int64_t v) : leaf_(v)
{
    llUserCheck(v >= 0, "IntTuple leaves must be non-negative, got " << v);
}

IntTuple::IntTuple(std::initializer_list<IntTuple> kids)
    : isNode_(true), kids_(kids)
{
}

IntTuple
IntTuple::node(std::vector<IntTuple> kids)
{
    IntTuple t;
    t.isNode_ = true;
    t.kids_ = std::move(kids);
    return t;
}

IntTuple
IntTuple::fromFlat(const std::vector<int64_t> &leaves)
{
    std::vector<IntTuple> kids;
    kids.reserve(leaves.size());
    for (int64_t v : leaves)
        kids.emplace_back(v);
    return node(std::move(kids));
}

int64_t
IntTuple::value() const
{
    llAssert(!isNode_, "IntTuple::value() on a node");
    return leaf_;
}

const std::vector<IntTuple> &
IntTuple::children() const
{
    llAssert(isNode_, "IntTuple::children() on a leaf");
    return kids_;
}

int
IntTuple::rank() const
{
    return isNode_ ? static_cast<int>(kids_.size()) : 1;
}

int
IntTuple::flatRank() const
{
    if (!isNode_)
        return 1;
    int n = 0;
    for (const auto &k : kids_)
        n += k.flatRank();
    return n;
}

int
IntTuple::depth() const
{
    if (!isNode_)
        return 0;
    int d = 0;
    for (const auto &k : kids_)
        d = std::max(d, k.depth());
    return d + 1;
}

int64_t
IntTuple::product() const
{
    if (!isNode_)
        return leaf_;
    int64_t p = 1;
    for (const auto &k : kids_)
        p *= k.product();
    return p;
}

std::vector<int64_t>
IntTuple::flatten() const
{
    std::vector<int64_t> out;
    out.reserve(static_cast<size_t>(flatRank()));
    std::vector<const IntTuple *> stack{this};
    // Depth-first, left to right (stack walks children in reverse).
    while (!stack.empty()) {
        const IntTuple *t = stack.back();
        stack.pop_back();
        if (t->isLeaf()) {
            out.push_back(t->leaf_);
            continue;
        }
        for (auto it = t->kids_.rbegin(); it != t->kids_.rend(); ++it)
            stack.push_back(&*it);
    }
    return out;
}

bool
IntTuple::congruent(const IntTuple &other) const
{
    if (isNode_ != other.isNode_)
        return false;
    if (!isNode_)
        return true;
    if (kids_.size() != other.kids_.size())
        return false;
    for (size_t i = 0; i < kids_.size(); ++i) {
        if (!kids_[i].congruent(other.kids_[i]))
            return false;
    }
    return true;
}

namespace {

IntTuple
reprofileImpl(const IntTuple &profile, const std::vector<int64_t> &leaves,
              size_t &next)
{
    if (profile.isLeaf()) {
        llAssert(next < leaves.size(),
                 "reprofile: not enough leaf values");
        return IntTuple(leaves[next++]);
    }
    std::vector<IntTuple> kids;
    kids.reserve(profile.children().size());
    for (const auto &k : profile.children())
        kids.push_back(reprofileImpl(k, leaves, next));
    return IntTuple::node(std::move(kids));
}

} // namespace

IntTuple
IntTuple::reprofile(const std::vector<int64_t> &leaves) const
{
    llUserCheck(static_cast<int>(leaves.size()) == flatRank(),
                "reprofile: " << leaves.size() << " leaves for a profile "
                              << "of flat rank " << flatRank());
    size_t next = 0;
    return reprofileImpl(*this, leaves, next);
}

bool
IntTuple::operator==(const IntTuple &other) const
{
    if (isNode_ != other.isNode_)
        return false;
    if (!isNode_)
        return leaf_ == other.leaf_;
    return kids_ == other.kids_;
}

std::string
IntTuple::toString() const
{
    if (!isNode_)
        return std::to_string(leaf_);
    std::string out = "(";
    for (size_t i = 0; i < kids_.size(); ++i) {
        if (i)
            out += ",";
        out += kids_[i].toString();
    }
    out += ")";
    return out;
}

namespace {

IntTuple
parseImpl(const std::string &s, size_t &pos)
{
    llUserCheck(pos < s.size(), "IntTuple::parse: unexpected end of \""
                                    << s << "\"");
    if (s[pos] == '(') {
        ++pos;
        std::vector<IntTuple> kids;
        if (pos < s.size() && s[pos] == ')') {
            ++pos;
            return IntTuple::node(std::move(kids));
        }
        while (true) {
            kids.push_back(parseImpl(s, pos));
            llUserCheck(pos < s.size(),
                        "IntTuple::parse: unterminated tuple in \""
                            << s << "\"");
            if (s[pos] == ',') {
                ++pos;
                continue;
            }
            llUserCheck(s[pos] == ')',
                        "IntTuple::parse: expected ',' or ')' at offset "
                            << pos << " of \"" << s << "\"");
            ++pos;
            return IntTuple::node(std::move(kids));
        }
    }
    llUserCheck(s[pos] >= '0' && s[pos] <= '9',
                "IntTuple::parse: expected digit or '(' at offset "
                    << pos << " of \"" << s << "\"");
    int64_t v = 0;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
        v = v * 10 + (s[pos] - '0');
        llUserCheck(v >= 0, "IntTuple::parse: overflow in \"" << s
                                                              << "\"");
        ++pos;
    }
    return IntTuple(v);
}

} // namespace

IntTuple
IntTuple::parse(const std::string &text)
{
    size_t pos = 0;
    IntTuple t = parseImpl(text, pos);
    llUserCheck(pos == text.size(),
                "IntTuple::parse: trailing characters in \"" << text
                                                             << "\"");
    return t;
}

} // namespace cute
} // namespace ll
