#include "cute/admit.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "support/diagnostics.h"
#include "triton/encodings.h"

namespace ll {
namespace cute {

namespace {

/** Brute-force injectivity up to this many elements; prove beyond. */
constexpr int64_t kInjectivityBruteLimit = int64_t(1) << 22;

int64_t
floorPow2(int64_t v)
{
    int64_t p = 1;
    while (p * 2 <= v)
        p *= 2;
    return p;
}

bool
isPow2(int64_t v)
{
    return v >= 1 && (v & (v - 1)) == 0;
}

/** Extents and strides with size-1 modes dropped. */
void
droppedModes(const CuteLayout &layout, std::vector<int64_t> &shape,
             std::vector<int64_t> &stride)
{
    shape.clear();
    stride.clear();
    for (size_t i = 0; i < layout.flatShape().size(); ++i) {
        if (layout.flatShape()[i] == 1)
            continue;
        shape.push_back(layout.flatShape()[i]);
        stride.push_back(layout.flatStride()[i]);
    }
}

/**
 * Is `layout` injective on its domain? Exact by enumeration for small
 * domains; for large ones the sorted-stride tiling criterion (each
 * stride at least the reach of the smaller-stride modes) proves
 * injectivity, and requests it cannot prove are rejected rather than
 * admitted on faith.
 */
enum class Injectivity
{
    Yes,
    No,
    Unprovable
};

Injectivity
checkInjective(const CuteLayout &layout)
{
    std::vector<int64_t> shape, stride;
    droppedModes(layout, shape, stride);
    if (layout.size() <= kInjectivityBruteLimit) {
        std::vector<int64_t> offsets;
        offsets.reserve(static_cast<size_t>(layout.size()));
        for (int64_t i = 0; i < layout.size(); ++i)
            offsets.push_back(layout(i));
        std::sort(offsets.begin(), offsets.end());
        for (size_t i = 1; i < offsets.size(); ++i) {
            if (offsets[i] == offsets[i - 1])
                return Injectivity::No;
        }
        return Injectivity::Yes;
    }
    std::vector<std::pair<int64_t, int64_t>> modes; // (stride, extent)
    for (size_t i = 0; i < shape.size(); ++i)
        modes.emplace_back(stride[i], shape[i]);
    std::sort(modes.begin(), modes.end());
    int64_t reach = 0; // largest offset reachable from smaller strides
    for (const auto &[d, s] : modes) {
        if (d == 0)
            return Injectivity::No;
        if (d <= reach)
            return Injectivity::Unprovable;
        reach += (s - 1) * d;
    }
    return Injectivity::Yes;
}

/** Minor-to-major logical-dim order: smallest stride first. */
std::vector<int32_t>
strideOrder(const std::vector<int64_t> &stride)
{
    std::vector<int32_t> order(stride.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = static_cast<int32_t>(i);
    std::stable_sort(order.begin(), order.end(),
                     [&](int32_t a, int32_t b) {
                         return stride[a] < stride[b];
                     });
    return order;
}

/** Malformed-request screen shared by both entry points. */
Result<std::vector<int64_t>>
validateRequest(const CuteConversionRequest &req)
{
    if (req.elemBytes != 1 && req.elemBytes != 2 && req.elemBytes != 4 &&
        req.elemBytes != 8) {
        return makeDiag(DiagCode::InvalidInput, "cute.admit",
                        "unsupported element size " +
                            std::to_string(req.elemBytes));
    }
    if (req.numWarps < 1 || !isPow2(req.numWarps)) {
        return makeDiag(DiagCode::InvalidInput, "cute.admit",
                        "numWarps must be a positive power of two, got " +
                            std::to_string(req.numWarps));
    }
    std::vector<int64_t> srcShape, srcStride, dstShape, dstStride;
    droppedModes(req.src, srcShape, srcStride);
    droppedModes(req.dst, dstShape, dstStride);
    if (srcShape != dstShape) {
        return makeDiag(DiagCode::InvalidInput, "cute.admit",
                        "src " + req.src.toString() + " and dst " +
                            req.dst.toString() +
                            " do not share a logical shape");
    }
    switch (checkInjective(req.dst)) {
      case Injectivity::No:
        return makeDiag(DiagCode::InvalidInput, "cute.admit",
                        "dst " + req.dst.toString() +
                            " aliases storage (non-injective)");
      case Injectivity::Unprovable:
        return makeDiag(DiagCode::InvalidInput, "cute.admit",
                        "dst " + req.dst.toString() +
                            " injectivity unprovable at this size");
      case Injectivity::Yes:
        break;
    }
    if (srcShape.empty())
        srcShape.push_back(1);
    return srcShape;
}

/**
 * Factor the request: core box plus blocked anchors on each side,
 * minor-to-major order following that side's storage strides. Does
 * not plan the core conversion itself.
 */
Result<CutePlan>
decomposeValidated(const CuteConversionRequest &req,
                   const sim::GpuSpec &spec,
                   std::vector<int64_t> logicalShape)
{
    CutePlan plan;
    plan.logicalShape = std::move(logicalShape);
    plan.coreShape.reserve(plan.logicalShape.size());
    plan.coreElems = 1;
    for (int64_t e : plan.logicalShape) {
        plan.coreShape.push_back(floorPow2(e));
        plan.coreElems *= plan.coreShape.back();
    }
    int64_t total = 1;
    for (int64_t e : plan.logicalShape)
        total *= e;
    plan.remainderElems = total - plan.coreElems;
    if (plan.remainderElems > 0) {
        plan.diagnostics.note(
            DiagCode::NonPow2Bridgeable, "cute.admit",
            "non-pow2 logical shape: core box of " +
                std::to_string(plan.coreElems) +
                " elements planned through the ladder, " +
                std::to_string(plan.remainderElems) +
                " remainder elements on the scalar window path");
    }
    if (plan.coreElems == 1)
        return plan; // nothing to plan: all-scalar (or one element)

    std::vector<int64_t> srcShape, srcStride, dstShape, dstStride;
    droppedModes(req.src, srcShape, srcStride);
    droppedModes(req.dst, dstShape, dstStride);
    triton::Shape shape32;
    for (int64_t e : plan.coreShape)
        shape32.push_back(static_cast<int32_t>(e));
    int vec = std::max(1, 16 / req.elemBytes);
    auto srcEnc = triton::BlockedEncoding::makeDefaultWithOrder(
        shape32, strideOrder(srcStride), req.numWarps, spec.warpSize,
        vec);
    auto dstEnc = triton::BlockedEncoding::makeDefaultWithOrder(
        shape32, strideOrder(dstStride), req.numWarps, spec.warpSize,
        vec);
    plan.coreSrc = srcEnc.toLinearLayout(shape32);
    plan.coreDst = dstEnc.toLinearLayout(shape32);
    return plan;
}

Result<CutePlan>
planCore(const CuteConversionRequest &req, const sim::GpuSpec &spec,
         std::vector<int64_t> logicalShape)
{
    auto plan = decomposeValidated(req, spec, std::move(logicalShape));
    if (!plan || !plan->needsCorePlan())
        return plan;
    auto core = codegen::tryPlanConversion(plan->coreSrc, plan->coreDst,
                                           req.elemBytes, spec);
    if (!core)
        return core.diag();
    plan->corePlan = std::move(*core);
    plan->hasCorePlan = true;
    return plan;
}

} // namespace

Result<CutePlan>
decomposeCuteConversion(const CuteConversionRequest &req,
                        const sim::GpuSpec &spec)
{
    auto logical = validateRequest(req);
    if (!logical)
        return logical.diag();
    return decomposeValidated(req, spec, std::move(*logical));
}

std::string
CutePlan::describe() const
{
    std::ostringstream os;
    auto tuple = [&os](const std::vector<int64_t> &v) {
        os << "(";
        for (size_t i = 0; i < v.size(); ++i)
            os << (i ? "," : "") << v[i];
        os << ")";
    };
    os << "cute-plan logical=";
    tuple(logicalShape);
    os << " core=";
    tuple(coreShape);
    os << " coreElems=" << coreElems << " remainder=" << remainderElems
       << " window=" << scalarWindow << "\n";
    if (hasCorePlan) {
        os << "core-src: " << coreSrc.toString() << "\n";
        os << "core-dst: " << coreDst.toString() << "\n";
        os << codegen::describePlan(corePlan);
    } else {
        os << "core: none (single-element box)\n";
    }
    if (!diagnostics.empty())
        os << "cute-notes: " << diagnostics.toString() << "\n";
    return os.str();
}

Result<CutePlan>
tryBridgeConversion(const CuteConversionRequest &req,
                    const sim::GpuSpec &spec)
{
    auto logical = validateRequest(req);
    if (!logical)
        return logical.diag();
    for (int64_t e : *logical) {
        if (!isPow2(e)) {
            return makeDiag(
                DiagCode::NonPow2Bridgeable, "cute.bridge",
                "logical extent " + std::to_string(e) +
                    " is not a power of two; the request is "
                    "well-formed and admissible via "
                    "tryPlanCuteConversion's decomposition path");
        }
    }
    return planCore(req, spec, std::move(*logical));
}

Result<CutePlan>
tryPlanCuteConversion(const CuteConversionRequest &req,
                      const sim::GpuSpec &spec)
{
    auto bridged = tryBridgeConversion(req, spec);
    if (bridged.ok() ||
        bridged.diag().code != DiagCode::NonPow2Bridgeable)
        return bridged;
    // Well-formed but non-pow2: factor into core + scalar remainder.
    auto logical = validateRequest(req);
    llAssert(logical.ok(), "validation diverged between entries");
    return planCore(req, spec, std::move(*logical));
}

CuteExecStats
executeCutePlan(const CutePlan &plan, const CuteConversionRequest &req,
                const std::vector<uint64_t> &srcBuf,
                std::vector<uint64_t> &dstBuf)
{
    llUserCheck(static_cast<int64_t>(srcBuf.size()) >= req.src.cosize(),
                "executeCutePlan: srcBuf smaller than src cosize "
                    << req.src.cosize());
    llUserCheck(static_cast<int64_t>(dstBuf.size()) >= req.dst.cosize(),
                "executeCutePlan: dstBuf smaller than dst cosize "
                    << req.dst.cosize());
    CuteExecStats stats;
    const int64_t n = req.src.size();
    llAssert(n == req.dst.size(), "executeCutePlan: size mismatch");
    // Odometer over the shared logical shape; core membership is
    // coordinate-wise containment in the core box.
    std::vector<int64_t> coord(plan.logicalShape.size(), 0);
    for (int64_t i = 0; i < n; ++i) {
        bool inCore = true;
        for (size_t k = 0; k < coord.size(); ++k) {
            if (coord[k] >= plan.coreShape[k]) {
                inCore = false;
                break;
            }
        }
        // Same data movement either way in this element-granular
        // simulation; the distinction drives the accounting (and, for
        // the core, the separately-audited distributed plan).
        dstBuf[req.dst(i)] = srcBuf[req.src(i)];
        if (inCore)
            ++stats.coreElems;
        else
            ++stats.remainderElems;
        for (size_t k = 0; k < coord.size(); ++k) {
            if (++coord[k] < plan.logicalShape[k])
                break;
            coord[k] = 0;
        }
    }
    stats.windows = (stats.remainderElems + plan.scalarWindow - 1) /
                    plan.scalarWindow;
    return stats;
}

} // namespace cute
} // namespace ll
