#include "cute/cute_layout.h"

#include <algorithm>
#include <utility>

#include "support/diagnostics.h"

namespace ll {
namespace cute {

CuteLayout::CuteLayout(IntTuple shape, IntTuple stride)
    : shape_(std::move(shape)), stride_(std::move(stride))
{
    llUserCheck(shape_.congruent(stride_),
                "CuteLayout: shape " << shape_.toString()
                                     << " and stride "
                                     << stride_.toString()
                                     << " are not congruent");
    flatShape_ = shape_.flatten();
    flatStride_ = stride_.flatten();
    for (size_t i = 0; i < flatShape_.size(); ++i) {
        llUserCheck(flatShape_[i] >= 1,
                    "CuteLayout: extent " << flatShape_[i]
                                          << " must be >= 1 in "
                                          << shape_.toString());
        llUserCheck(flatStride_[i] >= 0,
                    "CuteLayout: stride " << flatStride_[i]
                                          << " must be >= 0 in "
                                          << stride_.toString());
    }
}

CuteLayout
CuteLayout::make1D(int64_t size, int64_t stride)
{
    return CuteLayout(IntTuple(size), IntTuple(stride));
}

CuteLayout
CuteLayout::fromFlat(const std::vector<int64_t> &shape,
                     const std::vector<int64_t> &stride)
{
    llUserCheck(shape.size() == stride.size(),
                "CuteLayout::fromFlat: " << shape.size() << " extents vs "
                                         << stride.size() << " strides");
    return CuteLayout(IntTuple::fromFlat(shape), IntTuple::fromFlat(stride));
}

CuteLayout
CuteLayout::compactColex(const std::vector<int64_t> &shape)
{
    std::vector<int64_t> stride(shape.size());
    int64_t run = 1;
    for (size_t i = 0; i < shape.size(); ++i) {
        stride[i] = run;
        run *= shape[i];
    }
    return fromFlat(shape, stride);
}

CuteLayout
CuteLayout::concat(const std::vector<CuteLayout> &modes)
{
    std::vector<IntTuple> shapes, strides;
    shapes.reserve(modes.size());
    strides.reserve(modes.size());
    for (const auto &m : modes) {
        shapes.push_back(m.shape());
        strides.push_back(m.stride());
    }
    return CuteLayout(IntTuple::node(std::move(shapes)),
                      IntTuple::node(std::move(strides)));
}

int64_t
CuteLayout::cosize() const
{
    int64_t top = 0;
    for (size_t i = 0; i < flatShape_.size(); ++i)
        top += (flatShape_[i] - 1) * flatStride_[i];
    return top + 1;
}

CuteLayout
CuteLayout::mode(int i) const
{
    llUserCheck(i >= 0 && i < rank(),
                "CuteLayout::mode(" << i << ") on rank-" << rank()
                                    << " layout " << toString());
    if (shape_.isLeaf())
        return *this;
    return CuteLayout(shape_.children()[i], stride_.children()[i]);
}

int64_t
CuteLayout::operator()(int64_t idx) const
{
    llUserCheck(idx >= 0 && idx < size(),
                "CuteLayout: index " << idx << " outside [0, " << size()
                                     << ") of " << toString());
    int64_t out = 0;
    for (size_t i = 0; i < flatShape_.size(); ++i) {
        out += (idx % flatShape_[i]) * flatStride_[i];
        idx /= flatShape_[i];
    }
    return out;
}

int64_t
CuteLayout::apply(const std::vector<int64_t> &flatCoord) const
{
    llUserCheck(flatCoord.size() == flatShape_.size(),
                "CuteLayout::apply: " << flatCoord.size()
                                      << " coords for flat rank "
                                      << flatShape_.size());
    int64_t out = 0;
    for (size_t i = 0; i < flatCoord.size(); ++i) {
        llUserCheck(flatCoord[i] >= 0 && flatCoord[i] < flatShape_[i],
                    "CuteLayout::apply: coord " << flatCoord[i]
                                                << " outside extent "
                                                << flatShape_[i]);
        out += flatCoord[i] * flatStride_[i];
    }
    return out;
}

std::vector<int64_t>
CuteLayout::coordOf(int64_t idx) const
{
    llUserCheck(idx >= 0 && idx < size(),
                "CuteLayout: index " << idx << " outside [0, " << size()
                                     << ") of " << toString());
    std::vector<int64_t> coord(flatShape_.size());
    for (size_t i = 0; i < flatShape_.size(); ++i) {
        coord[i] = idx % flatShape_[i];
        idx /= flatShape_[i];
    }
    return coord;
}

bool
CuteLayout::operator==(const CuteLayout &other) const
{
    return shape_ == other.shape_ && stride_ == other.stride_;
}

std::string
CuteLayout::toString() const
{
    return shape_.toString() + ":" + stride_.toString();
}

CuteLayout
CuteLayout::parse(const std::string &text)
{
    // Split at the ':' separating the two trees. Colons never appear
    // inside an IntTuple, so the first one is the separator.
    size_t colon = text.find(':');
    llUserCheck(colon != std::string::npos,
                "CuteLayout::parse: missing ':' in \"" << text << "\"");
    return CuteLayout(IntTuple::parse(text.substr(0, colon)),
                      IntTuple::parse(text.substr(colon + 1)));
}

// ---------------------------------------------------------------------
// Algebra
// ---------------------------------------------------------------------

namespace {

struct FlatMode
{
    int64_t extent;
    int64_t stride;
};

/** Drop size-1 modes and merge contiguous neighbours. */
std::vector<FlatMode>
coalesceModes(const std::vector<int64_t> &shape,
              const std::vector<int64_t> &stride)
{
    std::vector<FlatMode> out;
    for (size_t i = 0; i < shape.size(); ++i) {
        if (shape[i] == 1)
            continue;
        if (!out.empty() &&
            stride[i] == out.back().extent * out.back().stride) {
            out.back().extent *= shape[i];
            continue;
        }
        out.push_back({shape[i], stride[i]});
    }
    return out;
}

CuteLayout
layoutFromModes(const std::vector<FlatMode> &modes)
{
    if (modes.empty())
        return CuteLayout(); // 1:0
    if (modes.size() == 1)
        return CuteLayout::make1D(modes[0].extent, modes[0].stride);
    std::vector<int64_t> shape, stride;
    shape.reserve(modes.size());
    stride.reserve(modes.size());
    for (const auto &m : modes) {
        shape.push_back(m.extent);
        stride.push_back(m.stride);
    }
    return CuteLayout::fromFlat(shape, stride);
}

/**
 * Compose coalesced flat modes of A with the single mode s:d of B:
 * walk the arithmetic progression {0, d, 2d, ...} through A's colex
 * mode boundaries, failing with a Diagnostic wherever a divisibility
 * condition would make the result inexpressible as a layout.
 */
Result<std::vector<FlatMode>>
compose1D(const std::vector<FlatMode> &a, int64_t aSize, int64_t s,
          int64_t d, const std::string &what)
{
    std::vector<FlatMode> out;
    if (s == 1)
        return out;
    if (d == 0) {
        out.push_back({s, 0});
        return out;
    }
    // Reach check: the largest argument B produces must land in A's
    // domain.
    if ((s - 1) * d >= aSize) {
        return makeDiag(DiagCode::InvalidInput, "cute.composition",
                        what + ": mode " + std::to_string(s) + ":" +
                            std::to_string(d) +
                            " reaches past the domain (size " +
                            std::to_string(aSize) + ") of the lhs");
    }
    // Divide the stride d out of A's leading modes.
    size_t i = 0;
    int64_t rem = d;
    while (i < a.size() && rem >= a[i].extent) {
        if (rem % a[i].extent != 0) {
            return makeDiag(DiagCode::InvalidInput, "cute.composition",
                            what + ": stride " + std::to_string(d) +
                                " does not factor over lhs extent " +
                                std::to_string(a[i].extent));
        }
        rem /= a[i].extent;
        ++i;
    }
    // Consume s elements across the remaining modes.
    int64_t remaining = s;
    while (remaining > 1) {
        if (i >= a.size()) {
            return makeDiag(DiagCode::InvalidInput, "cute.composition",
                            what + ": rhs walks past the lhs modes");
        }
        int64_t extent = a[i].extent;
        int64_t stride = a[i].stride;
        if (rem > 1 && extent % rem != 0) {
            return makeDiag(DiagCode::InvalidInput, "cute.composition",
                            what + ": stride remainder " +
                                std::to_string(rem) +
                                " does not divide lhs extent " +
                                std::to_string(extent));
        }
        int64_t avail = rem > 1 ? extent / rem : extent;
        int64_t take = std::min(remaining, avail);
        if (take > 1)
            out.push_back({take, stride * rem});
        if (remaining > avail) {
            if (remaining % avail != 0) {
                return makeDiag(
                    DiagCode::InvalidInput, "cute.composition",
                    what + ": rhs extent " + std::to_string(s) +
                        " wraps mid-mode over lhs extent " +
                        std::to_string(extent));
            }
            remaining /= avail;
        } else {
            remaining = 1;
        }
        rem = 1;
        ++i;
    }
    return out;
}

/** Rebuild one mode of B as the composed tree A ∘ mode. */
Result<std::pair<IntTuple, IntTuple>>
composeTree(const std::vector<FlatMode> &a, int64_t aSize,
            const IntTuple &bShape, const IntTuple &bStride,
            const std::string &what)
{
    if (!bShape.isLeaf()) {
        std::vector<IntTuple> shapes, strides;
        shapes.reserve(bShape.children().size());
        for (int i = 0; i < bShape.rank(); ++i) {
            auto sub = composeTree(a, aSize, bShape.children()[i],
                                   bStride.children()[i], what);
            if (!sub)
                return sub.diag();
            shapes.push_back(sub->first);
            strides.push_back(sub->second);
        }
        return std::make_pair(IntTuple::node(std::move(shapes)),
                              IntTuple::node(std::move(strides)));
    }
    auto modes =
        compose1D(a, aSize, bShape.value(), bStride.value(), what);
    if (!modes)
        return modes.diag();
    if (modes->empty())
        return std::make_pair(IntTuple(1), IntTuple(0));
    if (modes->size() == 1) {
        return std::make_pair(IntTuple((*modes)[0].extent),
                              IntTuple((*modes)[0].stride));
    }
    std::vector<int64_t> shape, stride;
    for (const auto &m : *modes) {
        shape.push_back(m.extent);
        stride.push_back(m.stride);
    }
    return std::make_pair(IntTuple::fromFlat(shape),
                          IntTuple::fromFlat(stride));
}

} // namespace

CuteLayout
coalesce(const CuteLayout &layout)
{
    return layoutFromModes(
        coalesceModes(layout.flatShape(), layout.flatStride()));
}

Result<CuteLayout>
composition(const CuteLayout &a, const CuteLayout &b)
{
    const std::string what =
        "composition(" + a.toString() + ", " + b.toString() + ")";
    // Cross-mode admissibility: each leaf (s, d) of B contributes
    // values from the weight interval [d, s*d) to A's argument, and the
    // per-leaf composition below is only the true function composition
    // when those contributions add without interacting — i.e. when the
    // intervals are pairwise disjoint, so the sum is a mixed-radix
    // decomposition and A distributes over it. (12,3):(15,15) is the
    // counterexample otherwise: both modes drive the same digits of A.
    {
        std::vector<std::pair<int64_t, int64_t>> spans; // [d, s*d)
        const std::vector<int64_t> &bs = b.flatShape();
        const std::vector<int64_t> &bd = b.flatStride();
        for (size_t k = 0; k < bs.size(); ++k) {
            if (bs[k] > 1 && bd[k] > 0)
                spans.emplace_back(bd[k], bs[k] * bd[k]);
        }
        std::sort(spans.begin(), spans.end());
        for (size_t k = 0; k + 1 < spans.size(); ++k) {
            if (spans[k].second > spans[k + 1].first) {
                return makeDiag(
                    DiagCode::InvalidInput, "cute.composition",
                    what + ": rhs modes overlap in the lhs argument (" +
                        "weight intervals [" +
                        std::to_string(spans[k].first) + ", " +
                        std::to_string(spans[k].second) + ") and [" +
                        std::to_string(spans[k + 1].first) + ", " +
                        std::to_string(spans[k + 1].second) + "))");
            }
        }
    }
    auto aModes = coalesceModes(a.flatShape(), a.flatStride());
    auto tree = composeTree(aModes, a.size(), b.shape(), b.stride(), what);
    if (!tree)
        return tree.diag();
    return CuteLayout(tree->first, tree->second);
}

Result<CuteLayout>
complement(const CuteLayout &a, int64_t m)
{
    const std::string what =
        "complement(" + a.toString() + ", " + std::to_string(m) + ")";
    llUserCheck(m >= 1,
                "complement codomain size must be >= 1, got " << m);
    auto modes = coalesceModes(a.flatShape(), a.flatStride());
    std::sort(modes.begin(), modes.end(),
              [](const FlatMode &x, const FlatMode &y) {
                  return x.stride < y.stride;
              });
    std::vector<FlatMode> out;
    int64_t covered = 1; // strides [0, covered) are tiled so far
    for (const auto &mode : modes) {
        if (mode.stride == 0) {
            return makeDiag(DiagCode::InvalidInput, "cute.complement",
                            what + ": lhs is non-injective (stride-0 "
                                   "mode of extent " +
                                std::to_string(mode.extent) + ")");
        }
        if (mode.stride % covered != 0 || mode.stride < covered) {
            return makeDiag(DiagCode::InvalidInput, "cute.complement",
                            what + ": stride " +
                                std::to_string(mode.stride) +
                                " does not tile on top of covered size " +
                                std::to_string(covered));
        }
        if (mode.stride > covered)
            out.push_back({mode.stride / covered, covered});
        covered = mode.stride * mode.extent;
    }
    if (m % covered != 0) {
        return makeDiag(DiagCode::InvalidInput, "cute.complement",
                        what + ": covered size " + std::to_string(covered) +
                            " does not divide codomain " +
                            std::to_string(m));
    }
    if (m > covered)
        out.push_back({m / covered, covered});
    // The construction yields strictly increasing strides, so this is
    // already coalesced except for possible adjacent-contiguity merges.
    std::vector<int64_t> shape, stride;
    for (const auto &mo : out) {
        shape.push_back(mo.extent);
        stride.push_back(mo.stride);
    }
    return layoutFromModes(coalesceModes(shape, stride));
}

Result<CuteLayout>
logicalDivide(const CuteLayout &a, const CuteLayout &tiler)
{
    auto rest = complement(tiler, a.size());
    if (!rest)
        return rest.diag();
    return composition(a, CuteLayout::concat({tiler, *rest}));
}

Result<CuteLayout>
logicalProduct(const CuteLayout &a, const CuteLayout &b)
{
    auto gaps = complement(a, a.size() * b.cosize());
    if (!gaps)
        return gaps.diag();
    auto replicas = composition(*gaps, b);
    if (!replicas)
        return replicas.diag();
    return CuteLayout::concat({a, *replicas});
}

} // namespace cute
} // namespace ll
