#include "cute/bridge.h"

#include <utility>

#include "support/diagnostics.h"

namespace ll {
namespace cute {

namespace {

bool
isPow2(int64_t v)
{
    return v >= 1 && (v & (v - 1)) == 0;
}

int
log2i(int64_t v)
{
    int n = 0;
    while ((int64_t(1) << n) < v)
        ++n;
    return n;
}

/**
 * The per-input-bit integer contributions of a pow2-extent layout, in
 * global input-bit order (mode m, bit j contributes stride_m << j).
 * Empty when any extent is not a power of two.
 */
std::vector<int64_t>
bitImages(const CuteLayout &layout)
{
    std::vector<int64_t> images;
    const auto &shape = layout.flatShape();
    const auto &stride = layout.flatStride();
    for (size_t m = 0; m < shape.size(); ++m) {
        if (!isPow2(shape[m]))
            return {};
        for (int j = 0; j < log2i(shape[m]); ++j)
            images.push_back(stride[m] << j);
    }
    return images;
}

/** First pair of bit positions with overlapping images, else {-1,-1}. */
std::pair<int, int>
firstOverlap(const std::vector<int64_t> &images)
{
    for (size_t p = 0; p < images.size(); ++p) {
        if (images[p] == 0)
            continue;
        for (size_t q = p + 1; q < images.size(); ++q) {
            if (images[p] & images[q])
                return {static_cast<int>(p), static_cast<int>(q)};
        }
    }
    return {-1, -1};
}

} // namespace

bool
isLinearizable(const CuteLayout &layout)
{
    if (layout.size() == 1)
        return true;
    auto images = bitImages(layout);
    if (images.empty())
        return false; // some extent is not a power of two
    return firstOverlap(images).first < 0;
}

std::pair<int64_t, int64_t>
linearityWitness(const CuteLayout &layout)
{
    auto images = bitImages(layout);
    auto [p, q] = firstOverlap(images);
    if (p < 0)
        return {-1, -1};
    // Extents are powers of two, so the colex split is a bit split and
    // the flat index with only global bit p set has coordinate 2^j in
    // bit p's mode. x and y touch bits whose integer contributions
    // share a set bit, so L(x) + L(y) carries while XOR does not:
    // L(x ^ y) = images[p] + images[q] != images[p] ^ images[q].
    return {int64_t(1) << p, int64_t(1) << q};
}

Result<LinearLayout>
toLinear(const CuteLayout &layout, const std::string &inDim,
         const std::string &outDim)
{
    if (!isPow2(layout.size())) {
        return makeDiag(DiagCode::InvalidInput, "cute.bridge",
                        "toLinear(" + layout.toString() + "): domain size " +
                            std::to_string(layout.size()) +
                            " is not a power of two");
    }
    auto images = bitImages(layout);
    if (images.empty() && layout.size() > 1) {
        return makeDiag(DiagCode::InvalidInput, "cute.bridge",
                        "toLinear(" + layout.toString() +
                            "): an extent is not a power of two");
    }
    auto [p, q] = firstOverlap(images);
    if (p >= 0) {
        return makeDiag(DiagCode::InvalidInput, "cute.bridge",
                        "toLinear(" + layout.toString() +
                            "): input bits " + std::to_string(p) + " and " +
                            std::to_string(q) +
                            " have overlapping images " +
                            std::to_string(images[p]) + " and " +
                            std::to_string(images[q]) +
                            " (addition would carry)");
    }
    int64_t maxImage = 0;
    for (int64_t img : images)
        maxImage |= img; // images are disjoint: OR == max reachable sum
    llUserCheck(maxImage <= INT32_MAX,
                "toLinear(" << layout.toString()
                            << "): image does not fit 32-bit coords");
    int32_t outSize = 1;
    while (outSize <= maxImage)
        outSize *= 2;
    LinearLayout::BasesT bases;
    auto &vecs = bases[inDim];
    vecs.reserve(images.size());
    for (int64_t img : images)
        vecs.push_back({static_cast<int32_t>(img)});
    return LinearLayout(std::move(bases), {{outDim, outSize}},
                        /*requireSurjective=*/false);
}

Result<LinearLayout>
toLinear(const CuteLayout &layout,
         const std::vector<LinearLayout::DimSize> &inDims,
         const std::vector<LinearLayout::DimSize> &outDims)
{
    auto flat = toLinear(layout, "in", "out");
    if (!flat)
        return flat.diag();
    int64_t totalIn = 1;
    for (const auto &[name, size] : inDims) {
        llUserCheck(isPow2(size), "toLinear: input dim " << name
                                                         << " size " << size
                                                         << " not pow2");
        totalIn *= size;
    }
    if (totalIn != layout.size()) {
        return makeDiag(DiagCode::InvalidInput, "cute.bridge",
                        "toLinear(" + layout.toString() +
                            "): input dims cover " +
                            std::to_string(totalIn) + " != domain size " +
                            std::to_string(layout.size()));
    }
    int64_t totalOut = 1;
    for (const auto &[name, size] : outDims) {
        llUserCheck(isPow2(size), "toLinear: output dim " << name
                                                          << " size "
                                                          << size
                                                          << " not pow2");
        totalOut *= size;
    }
    if (totalOut < flat->getOutDimSize("out")) {
        return makeDiag(DiagCode::InvalidInput, "cute.bridge",
                        "toLinear(" + layout.toString() +
                            "): output dims cover " +
                            std::to_string(totalOut) +
                            " < image bound " +
                            std::to_string(flat->getOutDimSize("out")));
    }
    // Split the flat bases across the named dims: first in dim = LSBs
    // of the flat index, first out dim = fastest axis of the offset.
    auto images = flat->flattenedBases("in");
    LinearLayout::BasesT bases;
    size_t bit = 0;
    for (const auto &[name, size] : inDims) {
        auto &vecs = bases[name];
        for (int j = 0; j < log2i(size); ++j, ++bit) {
            uint64_t img = images[bit];
            std::vector<int32_t> coords;
            coords.reserve(outDims.size());
            for (const auto &[outName, outSize] : outDims) {
                coords.push_back(static_cast<int32_t>(img % outSize));
                img /= outSize;
            }
            vecs.push_back(std::move(coords));
        }
    }
    return LinearLayout(std::move(bases), outDims,
                        /*requireSurjective=*/false);
}

bool
isDelinearizable(const LinearLayout &layout)
{
    uint64_t seen = 0;
    for (const auto &dim : layout.getInDimNames()) {
        for (uint64_t img : layout.flattenedBases(dim)) {
            if (seen & img)
                return false;
            seen |= img;
        }
    }
    return true;
}

Result<CuteLayout>
fromLinear(const LinearLayout &layout)
{
    uint64_t seen = 0;
    std::vector<CuteLayout> modes;
    for (const auto &dim : layout.getInDimNames()) {
        auto images = layout.flattenedBases(dim);
        if (images.empty()) {
            modes.push_back(CuteLayout()); // size-1 dim: 1:0
            continue;
        }
        std::vector<int64_t> shape(images.size(), 2);
        std::vector<int64_t> stride;
        stride.reserve(images.size());
        for (size_t j = 0; j < images.size(); ++j) {
            if (seen & images[j]) {
                return makeDiag(
                    DiagCode::InvalidInput, "cute.bridge",
                    "fromLinear: basis 2^" + std::to_string(j) +
                        " of input dim " + dim + " (image " +
                        std::to_string(images[j]) +
                        ") overlaps an earlier basis image: the map is "
                        "a proper XOR-swizzle, not (shape):(stride) "
                        "arithmetic");
            }
            seen |= images[j];
            stride.push_back(static_cast<int64_t>(images[j]));
        }
        if (images.size() == 1)
            modes.push_back(CuteLayout::make1D(2, stride[0]));
        else
            modes.push_back(CuteLayout::fromFlat(shape, stride));
    }
    if (modes.empty())
        return CuteLayout();
    if (modes.size() == 1)
        return modes[0];
    return CuteLayout::concat(modes);
}

} // namespace cute
} // namespace ll
