/**
 * @file
 * The lossless bridge between CuteLayout and LinearLayout.
 *
 * The power-of-two fragment of the CuTe algebra overlaps the F2 world
 * exactly, and the overlap is decidable. A CuteLayout L is
 * *linearizable* — expressible as a LinearLayout whose applyFlat agrees
 * with L on every flat index — iff
 *
 *   (1) every flat extent is a power of two (so the domain is an F2
 *       vector space and the colex coordinate split is a bit split), and
 *   (2) the per-bit images are pairwise bit-disjoint: for a mode
 *       (2^k : d), input bit j contributes d * 2^j to the offset, and
 *       multiplication only distributes over the bits of the index —
 *       i.e. equals the XOR of the contributions — when no two
 *       contributions (across all modes and bits) share a set bit, so
 *       no addition ever carries.
 *
 * Strides themselves need NOT be powers of two: 2:3 is perfectly
 * F2-linear (basis image 0b11); what breaks linearity is *overlap*, as
 * in (2,2):(1,3) where 1 & (3<<0)... shares bit 0 and index 3 maps to
 * 1 + 3 = 4 != 1 ^ 3 = 2. The reverse direction mirrors this: a
 * LinearLayout is *delinearizable* — expressible as (shape):(stride)
 * integer arithmetic — iff its flattened basis images are pairwise
 * bit-disjoint; XOR-swizzles (whose whole point is overlapping basis
 * images) are exactly what gets rejected.
 *
 * Both predicates are proven exact (accepts <=> round-trips, rejects
 * <=> an explicit linearity witness exists) by tests/cute_bridge_test
 * and the llfuzz --diff-cute shrinker.
 */

#ifndef LL_CUTE_BRIDGE_H
#define LL_CUTE_BRIDGE_H

#include <string>
#include <vector>

#include "cute/cute_layout.h"
#include "layout/linear_layout.h"
#include "support/result.h"

namespace ll {
namespace cute {

/**
 * True iff `layout` denotes an F2-linear map: all extents powers of
 * two and all nonzero per-bit contributions pairwise bit-disjoint.
 */
bool isLinearizable(const CuteLayout &layout);

/**
 * Witness of non-linearity for a pow2-extent layout rejected by
 * isLinearizable: a pair (x, y) of flat indices with
 * L(x ^ y) != L(x) ^ L(y). Exists for every such rejection (this is
 * what "isLinearizable is exact" means in the rejecting direction);
 * returns {-1, -1} only when the layout is in fact linearizable or has
 * a non-pow2 extent (where XOR on the domain is not even defined).
 */
std::pair<int64_t, int64_t> linearityWitness(const CuteLayout &layout);

/**
 * Bridge a linearizable CuteLayout to the LinearLayout computing the
 * same flat-index map: one input dimension `inDim` of size
 * size(layout), one output dimension `outDim` sized to the smallest
 * power of two containing the image. Fails with
 * DiagCode::InvalidInput naming the violated condition otherwise.
 */
Result<LinearLayout> toLinear(const CuteLayout &layout,
                              const std::string &inDim = "in",
                              const std::string &outDim = "dim0");

/**
 * As above, but with the input bits split across the given named dims
 * (first dim = least significant, sizes must multiply to
 * size(layout)) and the output bits split across `outDims` (sizes
 * must cover the image). This is the form the planner consumes:
 * register/lane/warp input dims over named tensor axes.
 */
Result<LinearLayout> toLinear(const CuteLayout &layout,
                              const std::vector<LinearLayout::DimSize>
                                  &inDims,
                              const std::vector<LinearLayout::DimSize>
                                  &outDims);

/**
 * True iff `layout`'s flattened basis images are pairwise
 * bit-disjoint, i.e. the map is integer (shape):(stride) arithmetic
 * and not a proper XOR-swizzle.
 */
bool isDelinearizable(const LinearLayout &layout);

/**
 * Bridge a delinearizable LinearLayout back to a CuteLayout agreeing
 * with applyFlat on every flattened input index. The result has one
 * top-level mode per input dimension (in input order), each mode a
 * chain of extent-2 leaves carrying that bit's image as its stride.
 * Fails with DiagCode::InvalidInput (naming the overlapping basis
 * pair) on swizzled layouts.
 */
Result<CuteLayout> fromLinear(const LinearLayout &layout);

} // namespace cute
} // namespace ll

#endif // LL_CUTE_BRIDGE_H
