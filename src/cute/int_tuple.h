/**
 * @file
 * IntTuple: the nested integer tuples underlying CuTe layouts.
 *
 * CuTe (Cecka, "CuTe Layout Representation and Algebra"; Carlisle et
 * al., "Categorical Foundations for CuTe Layouts") describes a tensor
 * layout as a pair of *congruent* nested integer tuples — a shape tree
 * and a stride tree with the same profile. An IntTuple is either a
 * single non-negative integer (a leaf) or an ordered list of
 * IntTuples (a node). The nesting is semantically meaningful: it
 * records the mode hierarchy that CuTe's tiling operators (logical
 * divide / product) create and consume.
 *
 * This is deliberately a plain value type with no F2 anywhere in it:
 * extents and strides are ordinary integers, which is exactly what
 * lets CuteLayout express the non-power-of-two tensors that
 * LinearLayout cannot (see bridge.h for the overlap fragment).
 */

#ifndef LL_CUTE_INT_TUPLE_H
#define LL_CUTE_INT_TUPLE_H

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace ll {
namespace cute {

class IntTuple
{
  public:
    /** The leaf 0. */
    IntTuple() = default;

    /** A leaf holding `v` (must be >= 0). */
    IntTuple(int64_t v); // NOLINT(implicit): mirrors CuTe's Int/tuple mix

    /** A node with the given children (may be empty: the rank-0 tuple). */
    IntTuple(std::initializer_list<IntTuple> kids);

    static IntTuple node(std::vector<IntTuple> kids);

    /** A flat (depth-1) node over the given leaf values. */
    static IntTuple fromFlat(const std::vector<int64_t> &leaves);

    bool isLeaf() const { return !isNode_; }

    /** Leaf value; asserts on nodes. */
    int64_t value() const;

    /** Children; asserts on leaves. */
    const std::vector<IntTuple> &children() const;

    /** Number of top-level modes: 1 for a leaf, child count for a node. */
    int rank() const;

    /** Leaf count of the whole tree. */
    int flatRank() const;

    /** 0 for a leaf, 1 + max child depth for a node. */
    int depth() const;

    /** Product of all leaves (1 for an empty node). */
    int64_t product() const;

    /** All leaves, left to right. */
    std::vector<int64_t> flatten() const;

    /** Same tree profile (ignores leaf values). */
    bool congruent(const IntTuple &other) const;

    /**
     * A tree with this tuple's profile whose leaves are replaced, left
     * to right, by `leaves` (size must equal flatRank()).
     */
    IntTuple reprofile(const std::vector<int64_t> &leaves) const;

    bool operator==(const IntTuple &other) const;
    bool operator!=(const IntTuple &other) const
    {
        return !(*this == other);
    }

    /** "3", "(2,3)", "((2,2),5)", "()". */
    std::string toString() const;

    /** Inverse of toString; throws UserError on malformed input. */
    static IntTuple parse(const std::string &text);

  private:
    bool isNode_ = false;
    int64_t leaf_ = 0;
    std::vector<IntTuple> kids_;
};

} // namespace cute
} // namespace ll

#endif // LL_CUTE_INT_TUPLE_H
