/**
 * @file
 * CuteLayout: CuTe's (shape, stride) tensor layouts over the integers.
 *
 * A CuteLayout is a pair of congruent IntTuples. It denotes the
 * function
 *
 *     L(i) = sum_k  c_k * d_k
 *
 * where (c_1, ..., c_n) is the colexicographic decomposition of the
 * flat index i over the flattened shape leaves (first leaf fastest,
 * matching both CuTe's convention and LinearLayout's
 * first-dim-least-significant flattening) and d_k are the flattened
 * stride leaves. Unlike LinearLayout, nothing here is a power of two:
 * extents like 3, 100, or 50257 and strides like 35 are first-class,
 * which is what admits the real-workload shapes (vocab sizes, odd
 * sequence lengths) that the F2 machinery alone rejects.
 *
 * The algebra of this file — coalesce, composition, complement,
 * logical divide, logical product — follows Cecka's "CuTe Layout
 * Representation and Algebra" and the Colfax categorical treatment.
 * Operations that require divisibility conditions return
 * Result<CuteLayout> and decline with a Diagnostic instead of
 * computing a wrong layout; every law they promise is enforced by
 * exhaustive enumeration in tests/cute_algebra_test.cpp.
 *
 * The power-of-two fragment of this algebra overlaps LinearLayout
 * exactly; see cute/bridge.h for the lossless round trip.
 */

#ifndef LL_CUTE_CUTE_LAYOUT_H
#define LL_CUTE_CUTE_LAYOUT_H

#include <cstdint>
#include <string>
#include <vector>

#include "cute/int_tuple.h"
#include "support/result.h"

namespace ll {
namespace cute {

class CuteLayout
{
  public:
    /** The unit layout 1:0 (size 1, constant 0). */
    CuteLayout() : shape_(1), stride_(0) {}

    /**
     * Construct from congruent shape and stride trees. Extents must be
     * >= 1 and strides >= 0 (negative strides are out of scope here).
     */
    CuteLayout(IntTuple shape, IntTuple stride);

    /** The flat layout s:d. */
    static CuteLayout make1D(int64_t size, int64_t stride = 1);

    /** A depth-1 layout from parallel extent/stride lists. */
    static CuteLayout fromFlat(const std::vector<int64_t> &shape,
                               const std::vector<int64_t> &stride);

    /**
     * The compact colexicographic (column-major in CuTe speak) layout
     * of the given extents: stride_k = product of earlier extents.
     */
    static CuteLayout compactColex(const std::vector<int64_t> &shape);

    /** Concatenate layouts as the modes of one new layout (A, B, ...). */
    static CuteLayout concat(const std::vector<CuteLayout> &modes);

    const IntTuple &shape() const { return shape_; }
    const IntTuple &stride() const { return stride_; }

    /** Number of top-level modes. */
    int rank() const { return shape_.rank(); }

    /** Domain size: product of all extents. */
    int64_t size() const { return shape_.product(); }

    /**
     * One past the largest reachable offset:
     * sum_k (s_k - 1) * d_k + 1 (strides are non-negative).
     */
    int64_t cosize() const;

    /** The i-th top-level mode as its own layout. */
    CuteLayout mode(int i) const;

    /** Flattened extents / strides, left to right. */
    const std::vector<int64_t> &flatShape() const { return flatShape_; }
    const std::vector<int64_t> &flatStride() const
    {
        return flatStride_;
    }

    /** Evaluate at a flat index in [0, size()). */
    int64_t operator()(int64_t idx) const;

    /** Evaluate at an explicit flat coordinate (one per shape leaf). */
    int64_t apply(const std::vector<int64_t> &flatCoord) const;

    /** Colexicographic decomposition of a flat index over the leaves. */
    std::vector<int64_t> coordOf(int64_t idx) const;

    /** Structural equality (same trees, not just the same function). */
    bool operator==(const CuteLayout &other) const;
    bool operator!=(const CuteLayout &other) const
    {
        return !(*this == other);
    }

    /** "((2,2),3):((1,32),8)". */
    std::string toString() const;

    /** Inverse of toString; throws UserError on malformed input. */
    static CuteLayout parse(const std::string &text);

  private:
    IntTuple shape_;
    IntTuple stride_;
    // Flattened views, derived once at construction.
    std::vector<int64_t> flatShape_;
    std::vector<int64_t> flatStride_;
};

// ---------------------------------------------------------------------
// The layout algebra. Laws are stated here and proven by enumeration in
// tests/cute_algebra_test.cpp; operations whose divisibility
// preconditions fail return a Diagnostic (DiagCode::InvalidInput)
// rather than a wrong layout.
// ---------------------------------------------------------------------

/**
 * Flatten nesting, drop size-1 modes, and merge adjacent modes
 * (s1, d1), (s2, d2) with d2 == s1 * d1 into (s1*s2, d1).
 * Law: coalesce(A)(i) == A(i) for all i, and the result is maximally
 * coalesced (no further merge applies).
 */
CuteLayout coalesce(const CuteLayout &layout);

/**
 * Functional composition R = A after B: R(i) = A(B(i)).
 * Requires B to be "admissible into" A: every mode of B must factor
 * through A's mode boundaries (the standard CuTe left-divisibility
 * conditions), B's modes must occupy pairwise-disjoint weight ranges
 * of A's argument, and B's reach must fit A's domain.
 * Law: on success, R(i) == A(B(i)) for all i < size(B), and
 * size(R) == size(B).
 */
Result<CuteLayout> composition(const CuteLayout &a, const CuteLayout &b);

/**
 * The complement of A with respect to codomain size M: a layout A*
 * such that the concatenated layout (A, A*) is a bijection from
 * [0, size(A) * size(A*)) onto [0, M). Requires A to be injective
 * with strides that tile M (the CuTe admissibility conditions).
 */
Result<CuteLayout> complement(const CuteLayout &a, int64_t m);

/**
 * Logical division: split A's domain by the tiler B,
 *     logical_divide(A, B) = composition(A, (B, complement(B, size(A)))).
 * Mode 0 of the result walks one tile (law: it equals
 * composition(A, B) functionally); mode 1 walks tile origins. The
 * division permutes A's domain: the image multiset is preserved.
 */
Result<CuteLayout> logicalDivide(const CuteLayout &a,
                                 const CuteLayout &tiler);

/**
 * Logical product: replicate A according to B,
 *     logical_product(A, B) =
 *         (A, composition(complement(A, size(A) * cosize(B)), B)).
 * Mode 0 of the result is A itself; each fixed replica index j sees
 * A's image set translated by a per-replica constant, and when B is
 * injective the replicas are pairwise disjoint.
 */
Result<CuteLayout> logicalProduct(const CuteLayout &a,
                                  const CuteLayout &b);

} // namespace cute
} // namespace ll

#endif // LL_CUTE_CUTE_LAYOUT_H
