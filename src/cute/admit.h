/**
 * @file
 * Non-power-of-two admission: planning CuteLayout conversions.
 *
 * A CuteConversionRequest describes a storage relayout: src and dst
 * both map the same logical flat index space [0, n) to storage
 * offsets, and the conversion must establish
 *
 *     dstBuf[dst(i)] = srcBuf[src(i)]   for every logical i.
 *
 * When every logical extent is a power of two this is exactly the
 * conversion problem the F2 planner already solves, and
 * tryBridgeConversion() routes it there. When extents are *not*
 * powers of two — 3x5x7 blocks, length-100 rows, 50257-entry vocab
 * axes — the F2 world previously answered InvalidInput. The
 * decomposition pass here factors such a request instead:
 *
 *  - a pow2 *core box* (each extent rounded down to a power of two)
 *    is relayouted through the existing distributed planner: each
 *    side gets a blocked anchor layout whose minor-to-major order is
 *    that side's dims sorted by stride (so vectorization follows the
 *    storage contiguity), and the full fallback ladder / plan cache /
 *    service machinery applies to the core plan;
 *  - the *remainder* (the L-shaped shell outside the box) is handled
 *    by a windowed scalar path: bounded chunks of element-wise moves.
 *
 * Totality splits three ways at the entry points: malformed requests
 * (mismatched logical shapes, aliasing dst, bad element size) fail
 * with DiagCode::InvalidInput; well-formed non-pow2 requests fail the
 * *strict* bridge entry with the stable DiagCode::NonPow2Bridgeable
 * (telling the caller the decomposition path wants them); and
 * tryPlanCuteConversion() is total over well-formed requests. The
 * end-to-end semantic is audited by check::checkCutePlan against a
 * brute-force tagged-buffer oracle.
 */

#ifndef LL_CUTE_ADMIT_H
#define LL_CUTE_ADMIT_H

#include <cstdint>
#include <string>
#include <vector>

#include "codegen/conversion.h"
#include "cute/cute_layout.h"
#include "layout/linear_layout.h"
#include "sim/gpu_spec.h"
#include "support/result.h"

namespace ll {
namespace cute {

/** One storage relayout over a shared logical index space. */
struct CuteConversionRequest
{
    /** Logical flat index -> source storage offset. */
    CuteLayout src;
    /** Logical flat index -> destination storage offset (injective). */
    CuteLayout dst;
    int elemBytes = 4;
    /** Warps available to the core's distributed anchors. */
    int numWarps = 4;
};

/** Elements per remainder window (bounds scalar-path working sets). */
constexpr int64_t kCuteScalarWindow = 4096;

struct CutePlan
{
    /** Shared logical extents (size-1 modes dropped; {1} if empty). */
    std::vector<int64_t> logicalShape;
    /** Per-extent floor-pow2 core box. */
    std::vector<int64_t> coreShape;
    int64_t coreElems = 1;
    int64_t remainderElems = 0;
    int64_t scalarWindow = kCuteScalarWindow;

    /**
     * The distributed anchors the core planned through
     * (register/lane/warp over dim0..dimK of the core box) and the
     * ladder plan between them. hasCorePlan is false only for
     * degenerate one-element cores, where there is nothing to plan.
     */
    LinearLayout coreSrc, coreDst;
    codegen::ConversionPlan corePlan;
    bool hasCorePlan = false;

    PlanDiagnostics diagnostics;

    /** A core plan is required (box larger than one element). */
    bool needsCorePlan() const { return coreElems > 1; }

    /** Deterministic rendering (cute framing + core describePlan). */
    std::string describe() const;
};

/**
 * Validation + factoring only: the returned plan carries the logical
 * shape, core box, and the core's distributed anchor layouts, but no
 * core ConversionPlan (hasCorePlan stays false). This is the piece
 * the service layer uses so it can route the core through the shared
 * plan cache (interned coreSrc/coreDst keys) instead of planning
 * fresh. Fails only with InvalidInput.
 */
Result<CutePlan> decomposeCuteConversion(const CuteConversionRequest &req,
                                         const sim::GpuSpec &spec);

/**
 * Strict pow2 entry: plan the request through the F2 ladder only.
 * Fails with InvalidInput for malformed requests and with
 * NonPow2Bridgeable for well-formed requests whose logical shape has
 * a non-pow2 extent (the caller should use tryPlanCuteConversion).
 */
Result<CutePlan> tryBridgeConversion(const CuteConversionRequest &req,
                                     const sim::GpuSpec &spec);

/**
 * Total planner over well-formed requests: pow2 shapes go straight
 * through the bridge; non-pow2 shapes are factored into core +
 * windowed scalar remainder. Only malformed requests (or a fully
 * failpoint-disabled ladder) come back with a Diagnostic.
 */
Result<CutePlan> tryPlanCuteConversion(const CuteConversionRequest &req,
                                       const sim::GpuSpec &spec);

/** What one simulated execution of a CutePlan did. */
struct CuteExecStats
{
    int64_t coreElems = 0;
    int64_t remainderElems = 0;
    /** Scalar windows opened for the remainder. */
    int64_t windows = 0;
};

/**
 * Execute the plan's data movement on element-granular buffers
 * (srcBuf must cover src's cosize, dstBuf dst's cosize): the core box
 * moves through the planned distributed route, the remainder through
 * scalar windows of plan.scalarWindow elements. Establishes
 * dstBuf[dst(i)] = srcBuf[src(i)] for every logical i.
 */
CuteExecStats executeCutePlan(const CutePlan &plan,
                              const CuteConversionRequest &req,
                              const std::vector<uint64_t> &srcBuf,
                              std::vector<uint64_t> &dstBuf);

} // namespace cute
} // namespace ll

#endif // LL_CUTE_ADMIT_H
