/**
 * @file
 * Sharded LRU cache of conversion plans for the compilation service.
 *
 * Planning a layout conversion is a pure function of
 * `(src, dst, elemBytes, GpuSpec)`; real deployments hit the same
 * handful of conversion pairs thousands of times across kernels, so
 * the cache stores immutable, shareable ConversionPlans (with their
 * PlanDiagnostics) behind shared_ptr<const ...> and hands the same
 * plan object to every requester. Keys are pointer-sized: interned
 * LayoutRefs (see interner.h) plus the element width and
 * GpuSpec::fingerprint().
 *
 * Policy, centralized here so every caller (the layout engine, the
 * conversion replay path, the batch driver) shares it:
 *
 *  - Positive entries are plans that were smoke-executed successfully.
 *    insert() *refuses* (a) while any failpoint is active — globally or
 *    on the calling thread's overlay — and (b) plans whose diagnostics
 *    carry a FailpointInjected note (a drained limit-N activation is no
 *    longer "active" but still shaped the plan). This is the PR-2 rule
 *    "failures are never cached" extended to fault-injected successes:
 *    a fuzzing run can never poison a shared cache.
 *  - Negative entries memoize *deterministic* InvalidInput rejections
 *    only (mismatched spaces, bad element sizes, ...), and age out
 *    after `negativeTtlLookups` lookups on their shard so a
 *    long-running service periodically re-validates. Planner trouble
 *    with any other code (failpoints, internal errors) is never
 *    cached.
 *  - Eviction is LRU per shard with capacity split evenly across
 *    shards; each shard has its own mutex so compilation threads do
 *    not serialize.
 *
 * Metric family: service.plan_cache.{hits,misses,negative_hits,
 * inserts,negative_inserts,evictions,insert_refusals,negative_expired}.
 */

#ifndef LL_SERVICE_PLAN_CACHE_H
#define LL_SERVICE_PLAN_CACHE_H

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "codegen/conversion.h"
#include "service/interner.h"
#include "sim/gpu_spec.h"
#include "support/result.h"

namespace ll {
namespace service {

/** Pointer-sized cache key: interned endpoints + width + spec id. */
struct PlanKey
{
    LayoutRef src = nullptr;
    LayoutRef dst = nullptr;
    int elemBytes = 0;
    uint64_t specId = 0;

    bool
    operator==(const PlanKey &other) const
    {
        return src == other.src && dst == other.dst &&
               elemBytes == other.elemBytes && specId == other.specId;
    }
};

struct PlanKeyHash
{
    size_t
    operator()(const PlanKey &k) const
    {
        uint64_t h = 1469598103934665603ull;
        auto mix = [&h](uint64_t v) {
            h ^= v;
            h *= 1099511628211ull;
            h ^= h >> 29;
        };
        mix(reinterpret_cast<uintptr_t>(k.src));
        mix(reinterpret_cast<uintptr_t>(k.dst));
        mix(static_cast<uint64_t>(k.elemBytes));
        mix(k.specId);
        return static_cast<size_t>(h);
    }
};

/** A cache hit: either a shared plan or a memoized rejection. */
struct CachedPlan
{
    /** Set for positive entries; immutable and safe to share across
     *  threads (every ConversionPlan member function is const). */
    std::shared_ptr<const codegen::ConversionPlan> plan;
    /** Set for negative entries: the memoized InvalidInput rejection. */
    std::shared_ptr<const Diagnostic> rejection;

    bool negative() const { return rejection != nullptr; }
};

struct PlanCacheStats
{
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t negativeHits = 0;
    int64_t inserts = 0;
    int64_t negativeInserts = 0;
    int64_t evictions = 0;
    /** Inserts refused by the failpoint policy (or a non-InvalidInput
     *  rejection offered to insertRejection). */
    int64_t insertRefusals = 0;
    /** Negative entries dropped because their TTL ran out. */
    int64_t negativeExpired = 0;

    int64_t lookups() const { return hits + negativeHits + misses; }
};

class PlanCache
{
  public:
    struct Config
    {
        /** Total entries across all shards (split evenly; each shard
         *  keeps at least one slot). */
        size_t capacity = 4096;
        int shards = 8;
        /** Shard lookups a negative entry survives before it expires.
         *  <= 0 disables negative caching entirely. */
        int64_t negativeTtlLookups = 4096;
        /** Interner producing the keys' LayoutRefs; nullptr means the
         *  process-global interner. */
        LayoutInterner *interner = nullptr;
    };

    PlanCache() : PlanCache(Config()) {}
    explicit PlanCache(Config config);
    PlanCache(const PlanCache &) = delete;
    PlanCache &operator=(const PlanCache &) = delete;

    LayoutInterner &interner() const { return *interner_; }

    /** Intern both endpoints and assemble the key for this request. */
    PlanKey key(const LinearLayout &src, const LinearLayout &dst,
                int elemBytes, const sim::GpuSpec &spec);

    /** nullopt on miss. A hit refreshes the entry's LRU position. */
    std::optional<CachedPlan> lookup(const PlanKey &key);

    /**
     * Stat-free, LRU-neutral read: no counters move, the lookup
     * generation does not advance, and recency is untouched. A negative
     * entry whose TTL has already run out reads as a miss (it is left
     * in place for the next lookup() to reap), so an expired rejection
     * can never suppress fresh planning. This is the singleflight
     * leader's double-check between losing the lookup() race and
     * planning: a racing leader's freshly inserted plan is found
     * without double-counting the request's one recorded lookup.
     */
    std::optional<CachedPlan> peek(const PlanKey &key) const;

    /**
     * Store a successfully smoke-executed plan. Returns false (and
     * stores nothing) when the failpoint policy refuses — see the file
     * comment. Overwrites any negative entry under the same key.
     */
    bool insert(const PlanKey &key, codegen::ConversionPlan plan);

    /** As above, sharing the caller's plan object instead of copying —
     *  the inserting requester and every later hit then hold the same
     *  immutable plan. */
    bool insert(const PlanKey &key,
                std::shared_ptr<const codegen::ConversionPlan> plan);

    /**
     * Memoize a deterministic rejection. Only DiagCode::InvalidInput
     * qualifies and the same failpoint policy applies; anything else
     * returns false and stores nothing.
     */
    bool insertRejection(const PlanKey &key, Diagnostic why);

    PlanCacheStats stats() const;
    int64_t size() const;
    size_t capacity() const { return capacity_; }
    void clear();

  private:
    struct Entry
    {
        PlanKey key;
        CachedPlan value;
        /** Shard lookup generation at insert; negatives expire when
         *  the shard's generation outruns this by the TTL. */
        int64_t insertGen = 0;
    };

    struct Shard
    {
        mutable std::mutex mu;
        /** Most-recently-used at the front. */
        std::list<Entry> lru;
        std::unordered_map<PlanKey, std::list<Entry>::iterator,
                           PlanKeyHash>
            index;
        int64_t lookupGen = 0;
        PlanCacheStats stats;
    };

    Shard &shardFor(const PlanKey &key);
    const Shard &shardFor(const PlanKey &key) const;
    bool insertEntry(const PlanKey &key, CachedPlan value, bool negative);

    LayoutInterner *interner_;
    std::vector<std::unique_ptr<Shard>> shards_;
    size_t capacity_;
    size_t capacityPerShard_;
    int64_t negativeTtl_;
};

} // namespace service
} // namespace ll

#endif // LL_SERVICE_PLAN_CACHE_H
