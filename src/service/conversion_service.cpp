#include "service/conversion_service.h"

#include "support/trace.h"

namespace ll {
namespace service {

ConversionOutcome
serveConversion(PlanCache *cache, const LinearLayout &src,
                const LinearLayout &dst, int elemBytes,
                const sim::GpuSpec &spec)
{
    trace::Span span("service.conversion", "service");
    ConversionOutcome out;

    std::optional<PlanKey> key;
    if (cache != nullptr) {
        key = cache->key(src, dst, elemBytes, spec);
        if (auto hit = cache->lookup(*key)) {
            out.fromCache = true;
            if (hit->negative()) {
                out.cachedRejection = true;
                out.error = hit->rejection->toString();
                span.arg("outcome", "cached-rejection");
                return out;
            }
            out.plan = hit->plan;
            span.arg("outcome", "cache-hit");
            return out;
        }
    }

    return planAndPublish(cache, key ? &*key : nullptr, src, dst,
                          elemBytes, spec);
}

ConversionOutcome
planAndPublish(PlanCache *cache, const PlanKey *key,
               const LinearLayout &src, const LinearLayout &dst,
               int elemBytes, const sim::GpuSpec &spec)
{
    trace::Span span("service.conversion.plan", "service");
    ConversionOutcome out;

    auto planned = [&]() -> Result<codegen::ConversionPlan> {
        try {
            return codegen::tryPlanConversion(src, dst, elemBytes, spec);
        } catch (const std::exception &e) {
            return makeDiag(DiagCode::PlannerInternalError,
                            "service.plan",
                            std::string("planner threw: ") + e.what());
        }
    }();
    if (!planned.ok()) {
        out.error = planned.diag().toString();
        if (key)
            cache->insertRejection(*key, planned.diag());
        span.arg("outcome", "plan-failed");
        return out;
    }

    auto fail = codegen::smokeExecutePlan(*planned, src, dst, elemBytes,
                                          spec);
    if (fail.has_value()) {
        out.execFailed = true;
        out.error = fail->toString();
        out.plan = std::make_shared<const codegen::ConversionPlan>(
            std::move(*planned));
        span.arg("outcome", "exec-failed");
        return out;
    }

    out.plan = std::make_shared<const codegen::ConversionPlan>(
        std::move(*planned));
    if (key)
        cache->insert(*key, out.plan);
    span.arg("outcome", "planned");
    return out;
}

} // namespace service
} // namespace ll
