/**
 * @file
 * CompileService: the compilation service's driver — a thread-pool
 * batch mode and an open-loop server mode over the layout engine, the
 * shared plan cache, and a per-key singleflight latch.
 *
 * A serving deployment compiles many kernels against one GPU model;
 * the conversions they need overlap heavily. In *batch* mode (run())
 * the service drains a fixed request list with N workers that all plan
 * against one PlanCache; concurrent misses on the same key coalesce
 * through the Singleflight latch so every cold key is planned exactly
 * once. In *server* mode (serve()) requests arrive on a
 * deterministic-seed Poisson process, pass a bounded admission queue
 * with a configurable shed policy, carry per-request deadlines
 * (cooperatively checked at the planner's rung boundaries via
 * deadline::Scoped) and a per-request retry budget with jittered
 * backoff, and are accounted against a p99 latency SLO.
 *
 * Every request terminates with a definite outcome — Planned, Shed,
 * DeadlineExceeded, or Failed — under any load and any injected fault;
 * the report carries the split, never a folded failure count.
 *
 * Spans: "service.batch"/"service.server" wrap a run,
 * "service.request" (cat "service") wraps each request with
 * name/outcome args; the admission queue and singleflight emit their
 * own (see admission.h, singleflight.h). Metrics: service.requests,
 * service.request_failures, service.batch.runs, service.server.runs,
 * service.outcome.{planned,shed,deadline_exceeded,failed},
 * service.retry.attempts, service.deadline.queue_expired, and the
 * "service.request_latency_us" histogram.
 *
 * Failpoints on the service path (all folded into llfuzz
 * --failpoint-coverage via serviceFailpointSites()): "svc.admit",
 * "svc.singleflight.leader", "svc.queue.timeout" (a popped job is
 * treated as having out-waited its deadline), "svc.retry" (a retry
 * attempt fails before re-planning).
 */

#ifndef LL_SERVICE_COMPILE_SERVICE_H
#define LL_SERVICE_COMPILE_SERVICE_H

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/layout_engine.h"
#include "ir/function.h"
#include "service/admission.h"
#include "service/conversion_service.h"
#include "service/plan_cache.h"
#include "service/singleflight.h"

namespace ll {
namespace service {

/** A single-conversion request (e.g. one corpus case). */
struct ConversionRequest
{
    LinearLayout src;
    LinearLayout dst;
    int elemBytes = 2;
    sim::GpuSpec spec;
};

/** One unit of work: exactly one of `build` / `conversion` is set. */
struct CompileRequest
{
    std::string name;
    /** Kernel compilation: build the IR, run it through LayoutEngine. */
    std::function<ir::Function()> build;
    /** Single conversion served through the coalesced cache path.
     *  Shared so a --repeat stream does not copy layouts per
     *  occurrence. */
    std::shared_ptr<const ConversionRequest> conversion;
};

/** The definite terminal state every request reaches. */
enum class RequestOutcome
{
    Planned,          ///< served a correct plan (cached, coalesced or fresh)
    Shed,             ///< refused by admission control before any work
    DeadlineExceeded, ///< deadline passed in queue / waiting on a flight
    Failed,           ///< planning or smoke execution failed (diagnosed)
};

std::string toString(RequestOutcome outcome);

struct CompileResponse
{
    std::string name;
    bool ok = false;
    RequestOutcome outcome = RequestOutcome::Failed;
    std::string error;
    /** Arrival-to-terminal latency (server mode includes queue wait). */
    double latencyUs = 0.0;
    /** Time spent queued before a worker picked the job up. */
    double queueUs = 0.0;
    /** Served as a singleflight follower (another request's plan). */
    bool coalesced = false;
    /** This request ran the planner itself: a cold singleflight leader,
     *  neither a cache hit nor a follower. */
    bool freshPlan = false;
    /** Retry attempts consumed beyond the first attempt. */
    int retries = 0;
    /** Kernel requests: the engine's full per-run stats. Conversion
     *  requests: plan-cache fields only (planCacheHits et al.). */
    engine::EngineStats stats;
};

struct ServiceReport
{
    std::vector<CompileResponse> responses;
    int threads = 0;
    double wallMs = 0.0;
    int64_t requests = 0;
    /** Terminal-outcome split; planned + shed + deadlineExceeded +
     *  failed == requests. */
    int64_t planned = 0;
    int64_t shed = 0;
    int64_t deadlineExceeded = 0;
    int64_t failed = 0;
    /** Legacy fold: everything that did not reach Planned. */
    int64_t failures = 0;
    int64_t retries = 0;
    /** Requests served as singleflight followers. */
    int64_t coalesced = 0;
    /** Conversion requests that ran the planner themselves (neither a
     *  cache hit nor a follower). On a cold stream with singleflight
     *  this equals the number of distinct keys — duplicates are 0. */
    int64_t freshPlans = 0;
    /** Sum over responses (kernel stats + conversion outcomes). */
    engine::EngineStats totals;
    /** Latency percentiles over *admitted* requests (shed excluded;
     *  server mode measures arrival-to-terminal). */
    double p50LatencyUs = 0.0;
    double p90LatencyUs = 0.0;
    double p99LatencyUs = 0.0;
    double requestsPerSec = 0.0;
    /** Server mode only. */
    double offeredRatePerSec = 0.0;
    double goodputPerSec = 0.0;
    double sloP99Ms = 0.0; ///< configured target; 0 = none
    bool sloOk = true;     ///< p99 (admitted) within the target
    AdmissionQueue::Stats queueStats;
    Singleflight::Stats flightStats;
};

class CompileService
{
  public:
    struct Options
    {
        int threads = 4;
        /** Shared plan cache; nullptr = every request plans fresh. */
        PlanCache *cache = nullptr;
        /** Engine configuration for kernel requests. The planCache
         *  field is overwritten with `cache` per run. */
        engine::EngineOptions engine;
        /** Minimum per-attempt service time in microseconds (spin after
         *  the real work). 0 = none. Lets overload drills and the
         *  saturation calibration model a heavier planner than the
         *  microsecond-cached reality, keeping arrival generation and
         *  sleep granularity out of the measurement. */
        double serviceFloorUs = 0.0;
    };

    /** Open-loop server configuration for serve(). */
    struct ServerConfig
    {
        /** Mean Poisson arrival rate, requests/second. */
        double ratePerSec = 100.0;
        /** Generation window in seconds (first arrival at t=0). */
        double durationSec = 1.0;
        /** Seed for the arrival process and retry jitter. */
        uint64_t seed = 42;
        /** Stop after this many arrivals; 0 = duration only. */
        int64_t maxRequests = 0;
        size_t queueCapacity = 64;
        AdmissionPolicy policy = AdmissionPolicy::ShedOldest;
        /** Per-request deadline from arrival; <= 0 = none. */
        double deadlineMs = 0.0;
        /** Retry attempts allowed per request beyond the first. */
        int retryBudget = 0;
        /** Base backoff before a retry; doubles per attempt, with
         *  deterministic jitter in [0.5x, 1x). */
        double retryBackoffMs = 1.0;
        /** p99 target for admitted requests; <= 0 = no SLO check. */
        double sloP99Ms = 0.0;
    };

    explicit CompileService(Options options);

    /** Drain the batch with `threads` workers. Blocks until done. */
    ServiceReport run(const std::vector<CompileRequest> &requests);

    /**
     * Serve an open-loop Poisson stream: arrivals cycle through
     * `stream` in order at cfg.ratePerSec for cfg.durationSec, pass the
     * admission queue, and are drained by `threads` workers. Blocks
     * until every arrival has a terminal outcome.
     */
    ServiceReport serve(const std::vector<CompileRequest> &stream,
                        const ServerConfig &cfg);

    /** The singleflight latch shared by this service's runs. */
    Singleflight &flights() { return flights_; }

  private:
    Options options_;
    Singleflight flights_;
};

/** Sum `from` into `into`: every counter field plus the metric deltas;
 *  planDiagnostics are appended. */
void accumulateStats(engine::EngineStats &into,
                     const engine::EngineStats &from);

/**
 * The deterministic open-loop arrival schedule serve() uses: offsets
 * from the stream start in microseconds, first arrival at 0, then
 * exponential gaps with mean 1/rate, truncated at `durationSec` (and
 * at `maxRequests` arrivals when > 0). Same seed, same schedule.
 */
std::vector<double> poissonArrivalOffsetsUs(double ratePerSec,
                                            double durationSec,
                                            uint64_t seed,
                                            int64_t maxRequests = 0);

/** Every failpoint site on the service path, for llfuzz
 *  --failpoint-coverage: svc.admit, svc.singleflight.leader,
 *  svc.queue.timeout, svc.retry. */
std::vector<std::string> serviceFailpointSites();

} // namespace service
} // namespace ll

#endif // LL_SERVICE_COMPILE_SERVICE_H
