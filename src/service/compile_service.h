/**
 * @file
 * CompileService: a thread-pool batch driver over the layout engine
 * and the shared plan cache.
 *
 * A serving deployment compiles many kernels against one GPU model;
 * the conversions they need overlap heavily. CompileService accepts a
 * batch of requests — whole-kernel compilations (an IR builder run
 * through LayoutEngine) or single conversions — and drains them with N
 * worker threads that all plan against one PlanCache, so the first
 * thread to need a conversion pays for planning and everyone else
 * shares the immutable plan. Per-request EngineStats (metric deltas
 * included) are captured into each worker's own response slot and
 * summed after the join, so aggregation is race-free by construction.
 *
 * Spans: "service.batch" wraps the whole run, "service.request" (cat
 * "service") wraps each request with name/outcome args. Metrics:
 * service.requests, service.request_failures, service.batch.runs, and
 * the "service.request_latency_us" histogram.
 */

#ifndef LL_SERVICE_COMPILE_SERVICE_H
#define LL_SERVICE_COMPILE_SERVICE_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "engine/layout_engine.h"
#include "ir/function.h"
#include "service/conversion_service.h"
#include "service/plan_cache.h"

namespace ll {
namespace service {

/** A single-conversion request (e.g. one corpus case). */
struct ConversionRequest
{
    LinearLayout src;
    LinearLayout dst;
    int elemBytes = 2;
    sim::GpuSpec spec;
};

/** One unit of work: exactly one of `build` / `conversion` is set. */
struct CompileRequest
{
    std::string name;
    /** Kernel compilation: build the IR, run it through LayoutEngine. */
    std::function<ir::Function()> build;
    /** Single conversion served through serveConversion(). Shared so a
     *  --repeat stream does not copy layouts per occurrence. */
    std::shared_ptr<const ConversionRequest> conversion;
};

struct CompileResponse
{
    std::string name;
    bool ok = false;
    std::string error;
    double latencyUs = 0.0;
    /** Kernel requests: the engine's full per-run stats. Conversion
     *  requests: plan-cache fields only (planCacheHits et al.). */
    engine::EngineStats stats;
};

struct ServiceReport
{
    std::vector<CompileResponse> responses;
    int threads = 0;
    double wallMs = 0.0;
    int64_t requests = 0;
    int64_t failures = 0;
    /** Sum over responses (kernel stats + conversion outcomes). */
    engine::EngineStats totals;
    double p50LatencyUs = 0.0;
    double p90LatencyUs = 0.0;
    double requestsPerSec = 0.0;
};

class CompileService
{
  public:
    struct Options
    {
        int threads = 4;
        /** Shared plan cache; nullptr = every request plans fresh. */
        PlanCache *cache = nullptr;
        /** Engine configuration for kernel requests. The planCache
         *  field is overwritten with `cache` per run. */
        engine::EngineOptions engine;
    };

    explicit CompileService(Options options);

    /** Drain the batch with `threads` workers. Blocks until done. */
    ServiceReport run(const std::vector<CompileRequest> &requests);

  private:
    Options options_;
};

/** Sum `from` into `into`: every counter field plus the metric deltas;
 *  planDiagnostics are appended. */
void accumulateStats(engine::EngineStats &into,
                     const engine::EngineStats &from);

} // namespace service
} // namespace ll

#endif // LL_SERVICE_COMPILE_SERVICE_H
