#include "service/plan_cache.h"

#include <algorithm>

#include "support/failpoint.h"
#include "support/metrics.h"

namespace ll {
namespace service {

namespace {

/** True when any diagnostic note records an injected failpoint or a
 *  deadline demotion: the plan's shape was forced by fault injection or
 *  by load, not by the inputs, so it must not be shared. */
bool
planWasFaultShaped(const codegen::ConversionPlan &plan)
{
    for (const auto &note : plan.diagnostics.notes) {
        if (note.code == DiagCode::FailpointInjected ||
            note.code == DiagCode::DeadlineExceeded)
            return true;
    }
    return false;
}

} // namespace

PlanCache::PlanCache(Config config)
    : interner_(config.interner ? config.interner
                                : &LayoutInterner::global()),
      capacity_(std::max<size_t>(config.capacity, 1)),
      negativeTtl_(config.negativeTtlLookups)
{
    const int numShards = std::max(config.shards, 1);
    capacityPerShard_ =
        std::max<size_t>(capacity_ / static_cast<size_t>(numShards), 1);
    shards_.reserve(static_cast<size_t>(numShards));
    for (int i = 0; i < numShards; ++i)
        shards_.push_back(std::make_unique<Shard>());
}

PlanCache::Shard &
PlanCache::shardFor(const PlanKey &key)
{
    return *shards_[PlanKeyHash{}(key) % shards_.size()];
}

const PlanCache::Shard &
PlanCache::shardFor(const PlanKey &key) const
{
    return *shards_[PlanKeyHash{}(key) % shards_.size()];
}

PlanKey
PlanCache::key(const LinearLayout &src, const LinearLayout &dst,
               int elemBytes, const sim::GpuSpec &spec)
{
    PlanKey k;
    k.src = interner_->intern(src);
    k.dst = interner_->intern(dst);
    k.elemBytes = elemBytes;
    k.specId = spec.fingerprint();
    return k;
}

std::optional<CachedPlan>
PlanCache::lookup(const PlanKey &key)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    ++shard.lookupGen;
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
        ++shard.stats.misses;
        static auto &misses =
            metrics::counter("service.plan_cache.misses");
        misses.inc();
        return std::nullopt;
    }
    Entry &entry = *it->second;
    if (entry.value.negative()) {
        if (negativeTtl_ > 0 &&
            shard.lookupGen - entry.insertGen > negativeTtl_) {
            shard.lru.erase(it->second);
            shard.index.erase(it);
            ++shard.stats.negativeExpired;
            ++shard.stats.misses;
            static auto &expired =
                metrics::counter("service.plan_cache.negative_expired");
            expired.inc();
            static auto &misses =
                metrics::counter("service.plan_cache.misses");
            misses.inc();
            return std::nullopt;
        }
        ++shard.stats.negativeHits;
        static auto &negHits =
            metrics::counter("service.plan_cache.negative_hits");
        negHits.inc();
    } else {
        ++shard.stats.hits;
        static auto &hits = metrics::counter("service.plan_cache.hits");
        hits.inc();
    }
    // Refresh recency.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return entry.value;
}

std::optional<CachedPlan>
PlanCache::peek(const PlanKey &key) const
{
    const Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end())
        return std::nullopt;
    const Entry &entry = *it->second;
    // An expired negative reads as a miss: a rejection past its TTL
    // must never suppress fresh planning (lookup() reaps it later).
    if (entry.value.negative() && negativeTtl_ > 0 &&
        shard.lookupGen - entry.insertGen > negativeTtl_)
        return std::nullopt;
    return entry.value;
}

bool
PlanCache::insertEntry(const PlanKey &key, CachedPlan value,
                       bool negative)
{
    Shard &shard = shardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
        // Positive results replace negatives (and stale positives);
        // a negative never displaces a cached plan — that offer is
        // refused outright.
        if (negative && !it->second->value.negative()) {
            ++shard.stats.insertRefusals;
            static auto &refusals =
                metrics::counter("service.plan_cache.insert_refusals");
            refusals.inc();
            return false;
        }
        it->second->value = std::move(value);
        it->second->insertGen = shard.lookupGen;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return true;
    }
    while (shard.lru.size() >= capacityPerShard_) {
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        ++shard.stats.evictions;
        static auto &evictions =
            metrics::counter("service.plan_cache.evictions");
        evictions.inc();
    }
    shard.lru.push_front(
        Entry{key, std::move(value), shard.lookupGen});
    shard.index.emplace(key, shard.lru.begin());
    if (negative) {
        ++shard.stats.negativeInserts;
        static auto &negInserts =
            metrics::counter("service.plan_cache.negative_inserts");
        negInserts.inc();
    } else {
        ++shard.stats.inserts;
        static auto &inserts =
            metrics::counter("service.plan_cache.inserts");
        inserts.inc();
    }
    return true;
}

bool
PlanCache::insert(const PlanKey &key, codegen::ConversionPlan plan)
{
    return insert(key, std::make_shared<const codegen::ConversionPlan>(
                           std::move(plan)));
}

bool
PlanCache::insert(const PlanKey &key,
                  std::shared_ptr<const codegen::ConversionPlan> plan)
{
    if (failpoint::anyActive() || planWasFaultShaped(*plan)) {
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mu);
        ++shard.stats.insertRefusals;
        static auto &refusals =
            metrics::counter("service.plan_cache.insert_refusals");
        refusals.inc();
        return false;
    }
    CachedPlan value;
    value.plan = std::move(plan);
    return insertEntry(key, std::move(value), /*negative=*/false);
}

bool
PlanCache::insertRejection(const PlanKey &key, Diagnostic why)
{
    if (negativeTtl_ <= 0 || why.code != DiagCode::InvalidInput ||
        failpoint::anyActive()) {
        Shard &shard = shardFor(key);
        std::lock_guard<std::mutex> lock(shard.mu);
        ++shard.stats.insertRefusals;
        static auto &refusals =
            metrics::counter("service.plan_cache.insert_refusals");
        refusals.inc();
        return false;
    }
    CachedPlan value;
    value.rejection = std::make_shared<const Diagnostic>(std::move(why));
    return insertEntry(key, std::move(value), /*negative=*/true);
}

PlanCacheStats
PlanCache::stats() const
{
    PlanCacheStats total;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        const PlanCacheStats &s = shard->stats;
        total.hits += s.hits;
        total.misses += s.misses;
        total.negativeHits += s.negativeHits;
        total.inserts += s.inserts;
        total.negativeInserts += s.negativeInserts;
        total.evictions += s.evictions;
        total.insertRefusals += s.insertRefusals;
        total.negativeExpired += s.negativeExpired;
    }
    return total;
}

int64_t
PlanCache::size() const
{
    int64_t n = 0;
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        n += static_cast<int64_t>(shard->lru.size());
    }
    return n;
}

void
PlanCache::clear()
{
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mu);
        shard->lru.clear();
        shard->index.clear();
    }
}

} // namespace service
} // namespace ll
