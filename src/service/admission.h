/**
 * @file
 * Bounded admission queue with load shedding for the server loop.
 *
 * An open-loop arrival process does not slow down because the workers
 * are busy — overload has to be absorbed by policy, not by luck. The
 * queue holds at most `capacity` jobs and applies one of three
 * policies when full:
 *
 *   Block      — the producer waits for space (degrades the arrival
 *                process to closed-loop; useful as a baseline, not a
 *                serving posture);
 *   ShedNewest — the offered job is refused (classic tail drop);
 *   ShedOldest — the offered job is admitted and the oldest queued job
 *                is shed (the head has waited longest and is the most
 *                likely to blow its deadline anyway).
 *
 * Every outcome is definite: a pushed job is either admitted (and will
 * be popped exactly once) or comes back shed — to the producer for
 * newest-shed, via the `shed` out-list for oldest-shed — so the server
 * can record a terminal outcome for it. close() drains: producers get
 * shed, consumers keep popping until the queue is empty, then pop()
 * returns false.
 *
 * Failpoint: "svc.admit" sheds the offered job regardless of capacity
 * (admission-control fault drill). Metrics:
 * service.admit.{admitted,shed_newest,shed_oldest,failpoint_shed}.
 * Spans: "service.admit" (cat "service") with policy/depth/outcome
 * args on every push.
 */

#ifndef LL_SERVICE_ADMISSION_H
#define LL_SERVICE_ADMISSION_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace ll {
namespace service {

struct CompileRequest;
struct CompileResponse;

enum class AdmissionPolicy
{
    Block,
    ShedNewest,
    ShedOldest,
};

std::string toString(AdmissionPolicy policy);
std::optional<AdmissionPolicy>
parseAdmissionPolicy(const std::string &s);

/** One queued unit of server work. The response slot is preallocated
 *  by the producer and written by exactly one thread. */
struct ServerJob
{
    const CompileRequest *request = nullptr;
    CompileResponse *response = nullptr;
    std::chrono::steady_clock::time_point arrival{};
    /** time_point::max() = no deadline. */
    std::chrono::steady_clock::time_point deadline =
        std::chrono::steady_clock::time_point::max();
    uint64_t seq = 0;
};

class AdmissionQueue
{
  public:
    struct Config
    {
        size_t capacity = 64;
        AdmissionPolicy policy = AdmissionPolicy::ShedOldest;
    };

    explicit AdmissionQueue(Config config);
    AdmissionQueue(const AdmissionQueue &) = delete;
    AdmissionQueue &operator=(const AdmissionQueue &) = delete;

    enum class PushResult
    {
        Admitted,
        Shed,
    };

    /**
     * Offer a job. Returns Admitted when the job entered the queue
     * (ShedOldest may have appended evicted older jobs to `shed`), or
     * Shed when the job itself was refused — queue full under
     * ShedNewest, queue closed, or the svc.admit failpoint fired.
     */
    PushResult push(ServerJob job, std::vector<ServerJob> &shed);

    /** Block until a job is available or the queue is closed *and*
     *  drained; false means no more jobs will ever come. */
    bool pop(ServerJob &out);

    /** Stop admitting; wakes blocked producers (their pushes shed) and
     *  lets consumers drain what is already queued. */
    void close();

    size_t depth() const;

    struct Stats
    {
        int64_t admitted = 0;
        int64_t shedNewest = 0;
        int64_t shedOldest = 0;
        int64_t shedFailpoint = 0;
        int64_t shedClosed = 0;
        /** High-water mark of the queue depth. */
        int64_t maxDepth = 0;

        int64_t shedTotal() const
        {
            return shedNewest + shedOldest + shedFailpoint + shedClosed;
        }
    };
    Stats stats() const;

  private:
    const Config config_;
    mutable std::mutex mu_;
    std::condition_variable cvSpace_; // producers under Block
    std::condition_variable cvItems_; // consumers
    std::deque<ServerJob> queue_;
    bool closed_ = false;
    Stats stats_;
};

} // namespace service
} // namespace ll

#endif // LL_SERVICE_ADMISSION_H
