#include "service/compile_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <random>
#include <thread>

#include "support/deadline.h"
#include "support/failpoint.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace ll {
namespace service {

namespace {

using SteadyClock = std::chrono::steady_clock;

double
toUs(SteadyClock::duration d)
{
    return std::chrono::duration<double, std::micro>(d).count();
}

double
percentile(std::vector<double> samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    size_t rank = static_cast<size_t>(
        p / 100.0 * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[std::min(rank, samples.size() - 1)];
}

metrics::Histogram &
latencyHistogram()
{
    static auto &h = metrics::Registry::instance().histogram(
        "service.request_latency_us",
        {50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000,
         100000});
    return h;
}

void
recordOutcome(RequestOutcome outcome)
{
    switch (outcome) {
      case RequestOutcome::Planned: {
        static auto &c = metrics::counter("service.outcome.planned");
        c.inc();
        break;
      }
      case RequestOutcome::Shed: {
        static auto &c = metrics::counter("service.outcome.shed");
        c.inc();
        break;
      }
      case RequestOutcome::DeadlineExceeded: {
        static auto &c =
            metrics::counter("service.outcome.deadline_exceeded");
        c.inc();
        break;
      }
      case RequestOutcome::Failed: {
        static auto &c = metrics::counter("service.outcome.failed");
        c.inc();
        break;
      }
    }
}

/** Everything one request execution needs besides the request. */
struct ExecContext
{
    const engine::EngineOptions &engineOptions;
    PlanCache *cache = nullptr;
    Singleflight *flights = nullptr;
    double serviceFloorUs = 0.0;
};

/** Busy-wait out the remainder of the configured service floor so one
 *  attempt never completes faster than `floorUs` from `t0`. */
void
spinServiceFloor(SteadyClock::time_point t0, double floorUs)
{
    if (floorUs <= 0.0)
        return;
    const auto until =
        t0 + std::chrono::duration_cast<SteadyClock::duration>(
                 std::chrono::duration<double, std::micro>(floorUs));
    while (SteadyClock::now() < until) {
        // spin; the floor exists to model a heavier planner, so
        // occupying the worker is exactly the point
    }
}

/**
 * Run one attempt of one request into `resp` (ok / outcome / error /
 * stats / coalesced / freshPlan). Never throws. Latency and outcome
 * metrics are the caller's job — batch mode measures the attempt,
 * server mode measures arrival-to-terminal.
 */
void
executeAttempt(const CompileRequest &req, const ExecContext &ctx,
               std::optional<SteadyClock::time_point> deadline,
               CompileResponse &resp)
{
    trace::Span span("service.request", "service");
    if (span.active())
        span.arg("name", req.name);
    resp.name = req.name;
    const auto t0 = SteadyClock::now();
    try {
        if (req.build) {
            ir::Function f = req.build();
            engine::LayoutEngine eng{ctx.engineOptions};
            resp.stats = eng.run(f);
            resp.ok = resp.stats.planFailures == 0 &&
                      resp.stats.execFailures == 0;
            resp.outcome = resp.ok ? RequestOutcome::Planned
                                   : RequestOutcome::Failed;
            if (!resp.ok)
                resp.error = "engine downgraded " +
                             std::to_string(resp.stats.planFailures +
                                            resp.stats.execFailures) +
                             " conversion(s) to convert:unplanned";
        } else if (req.conversion) {
            const ConversionRequest &c = *req.conversion;
            FlightResult flight = serveConversionCoalesced(
                ctx.cache, ctx.flights, c.src, c.dst, c.elemBytes,
                c.spec, deadline);
            const ConversionOutcome &outcome = flight.outcome;
            resp.coalesced = flight.role == FlightRole::Follower;
            resp.error = outcome.error;
            if (flight.role == FlightRole::TimedOut) {
                resp.ok = false;
                resp.outcome = RequestOutcome::DeadlineExceeded;
                if (ctx.cache != nullptr)
                    resp.stats.planCacheMisses = 1;
            } else {
                resp.ok = outcome.planned();
                resp.outcome = resp.ok ? RequestOutcome::Planned
                                       : RequestOutcome::Failed;
                if (outcome.fromCache) {
                    if (outcome.cachedRejection) {
                        resp.stats.planCacheNegativeHits = 1;
                        resp.stats.planFailures = 1;
                    } else {
                        resp.stats.planCacheHits = 1;
                        resp.stats.convertsPlanned = 1;
                    }
                } else {
                    if (ctx.cache != nullptr)
                        resp.stats.planCacheMisses = 1;
                    if (outcome.execFailed)
                        resp.stats.execFailures = 1;
                    else if (outcome.plan)
                        resp.stats.convertsPlanned = 1;
                    else
                        resp.stats.planFailures = 1;
                    resp.freshPlan = flight.role == FlightRole::Leader &&
                                     outcome.plan != nullptr &&
                                     !outcome.execFailed;
                }
            }
        } else {
            resp.ok = false;
            resp.outcome = RequestOutcome::Failed;
            resp.error = "request carries neither a kernel builder nor "
                         "a conversion";
        }
    } catch (const std::exception &e) {
        resp.ok = false;
        resp.outcome = RequestOutcome::Failed;
        resp.error = e.what();
    }
    spinServiceFloor(t0, ctx.serviceFloorUs);
    if (span.active())
        span.arg("outcome", toString(resp.outcome));
}

/**
 * One request with retries: run an attempt, and while the terminal
 * state is Failed and budget remains, back off (jittered exponential,
 * capped by the deadline) and try again. A "svc.retry" failpoint fails
 * a retry attempt before it reaches the planner. The deadline, when
 * present, is installed for the whole loop so the planner can demote
 * at rung boundaries.
 */
void
executeWithRetries(const CompileRequest &req, const ExecContext &ctx,
                   std::optional<SteadyClock::time_point> deadline,
                   int retryBudget, double retryBackoffMs,
                   std::mt19937_64 &rng, CompileResponse &resp)
{
    std::optional<deadline::Scoped> scoped;
    if (deadline.has_value())
        scoped.emplace(*deadline);

    for (int attempt = 0;; ++attempt) {
        if (attempt > 0) {
            ++resp.retries;
            static auto &retries =
                metrics::counter("service.retry.attempts");
            retries.inc();
            double backoffMs = retryBackoffMs *
                               std::ldexp(1.0, attempt - 1);
            std::uniform_real_distribution<double> jitter(0.5, 1.0);
            backoffMs *= jitter(rng);
            if (deadline.has_value()) {
                const double remainMs =
                    toUs(*deadline - SteadyClock::now()) / 1e3;
                if (remainMs <= 0.0) {
                    resp.ok = false;
                    resp.outcome = RequestOutcome::DeadlineExceeded;
                    resp.error = "deadline-exceeded: retry budget "
                                 "outlived the request deadline";
                    return;
                }
                backoffMs = std::min(backoffMs, remainMs);
            }
            if (backoffMs > 0.0)
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        backoffMs));
            if (deadline.has_value() &&
                SteadyClock::now() >= *deadline) {
                resp.ok = false;
                resp.outcome = RequestOutcome::DeadlineExceeded;
                resp.error = "deadline-exceeded: request deadline "
                             "expired during retry backoff";
                return;
            }
            if (LL_FAILPOINT("svc.retry")) {
                resp.ok = false;
                resp.outcome = RequestOutcome::Failed;
                resp.error =
                    "[svc.retry] failpoint-injected: retry attempt "
                    "failed before re-planning";
                if (attempt >= retryBudget)
                    return;
                continue;
            }
        }

        CompileResponse attemptResp;
        executeAttempt(req, ctx, deadline, attemptResp);
        resp.ok = attemptResp.ok;
        resp.outcome = attemptResp.outcome;
        resp.error = attemptResp.error;
        resp.coalesced = attemptResp.coalesced;
        resp.freshPlan = resp.freshPlan || attemptResp.freshPlan;
        accumulateStats(resp.stats, attemptResp.stats);
        if (resp.ok || resp.outcome == RequestOutcome::DeadlineExceeded)
            return;
        if (attempt >= retryBudget)
            return;
    }
}

/** Fold the per-response terminal states and latencies into the
 *  report: outcome split, totals, percentiles (admitted only). */
void
finalizeReport(ServiceReport &report)
{
    std::vector<double> latencies;
    latencies.reserve(report.responses.size());
    for (const auto &resp : report.responses) {
        switch (resp.outcome) {
          case RequestOutcome::Planned:
            ++report.planned;
            break;
          case RequestOutcome::Shed:
            ++report.shed;
            break;
          case RequestOutcome::DeadlineExceeded:
            ++report.deadlineExceeded;
            break;
          case RequestOutcome::Failed:
            ++report.failed;
            break;
        }
        if (resp.outcome != RequestOutcome::Shed)
            latencies.push_back(resp.latencyUs);
        report.retries += resp.retries;
        if (resp.coalesced)
            ++report.coalesced;
        if (resp.freshPlan)
            ++report.freshPlans;
        accumulateStats(report.totals, resp.stats);
    }
    report.failures =
        report.shed + report.deadlineExceeded + report.failed;
    if (report.failures > 0) {
        static auto &failures =
            metrics::counter("service.request_failures");
        failures.add(report.failures);
    }
    static auto &served = metrics::counter("service.requests");
    served.add(report.requests);
    report.p50LatencyUs = percentile(latencies, 50.0);
    report.p90LatencyUs = percentile(latencies, 90.0);
    report.p99LatencyUs = percentile(latencies, 99.0);
    report.requestsPerSec =
        report.wallMs > 0.0
            ? static_cast<double>(report.requests) * 1e3 / report.wallMs
            : 0.0;
}

Singleflight::Stats
flightStatsDelta(const Singleflight::Stats &before,
                 const Singleflight::Stats &after)
{
    Singleflight::Stats delta;
    delta.leaders = after.leaders - before.leaders;
    delta.followers = after.followers - before.followers;
    delta.timeouts = after.timeouts - before.timeouts;
    return delta;
}

} // namespace

std::string
toString(RequestOutcome outcome)
{
    switch (outcome) {
      case RequestOutcome::Planned:
        return "planned";
      case RequestOutcome::Shed:
        return "shed";
      case RequestOutcome::DeadlineExceeded:
        return "deadline-exceeded";
      case RequestOutcome::Failed:
        return "failed";
    }
    return "unknown";
}

void
accumulateStats(engine::EngineStats &into,
                const engine::EngineStats &from)
{
    into.convertsInserted += from.convertsInserted;
    into.convertsEliminated += from.convertsEliminated;
    into.convertsPlanned += from.convertsPlanned;
    into.planFallbacks += from.planFallbacks;
    into.planFailures += from.planFailures;
    into.transferFallbacks += from.transferFallbacks;
    into.execFallbacks += from.execFallbacks;
    into.execFailures += from.execFailures;
    into.smokeCacheHits += from.smokeCacheHits;
    into.planCacheHits += from.planCacheHits;
    into.planCacheNegativeHits += from.planCacheNegativeHits;
    into.planCacheMisses += from.planCacheMisses;
    into.synthConvertsEliminated += from.synthConvertsEliminated;
    into.synthAssignmentsEvaluated += from.synthAssignmentsEvaluated;
    into.synthChoseSynthesized += from.synthChoseSynthesized;
    into.synthDefaultCycles += from.synthDefaultCycles;
    into.synthChosenCycles += from.synthChosenCycles;
    into.planDiagnostics.insert(into.planDiagnostics.end(),
                                from.planDiagnostics.begin(),
                                from.planDiagnostics.end());
    for (const auto &[name, delta] : from.metrics)
        into.metrics[name] += delta;
}

std::vector<double>
poissonArrivalOffsetsUs(double ratePerSec, double durationSec,
                        uint64_t seed, int64_t maxRequests)
{
    std::vector<double> offsets;
    if (ratePerSec <= 0.0 || durationSec <= 0.0)
        return offsets;
    std::mt19937_64 rng(seed);
    std::exponential_distribution<double> gap(ratePerSec);
    double t = 0.0; // first arrival opens the window
    while (t < durationSec &&
           (maxRequests <= 0 ||
            static_cast<int64_t>(offsets.size()) < maxRequests)) {
        offsets.push_back(t * 1e6);
        t += gap(rng);
    }
    return offsets;
}

std::vector<std::string>
serviceFailpointSites()
{
    return {"svc.admit", "svc.singleflight.leader", "svc.queue.timeout",
            "svc.retry"};
}

CompileService::CompileService(Options options)
    : options_(std::move(options))
{
}

ServiceReport
CompileService::run(const std::vector<CompileRequest> &requests)
{
    trace::Span span("service.batch", "service");
    static auto &runs = metrics::counter("service.batch.runs");
    runs.inc();

    ServiceReport report;
    report.threads = std::max(options_.threads, 1);
    report.requests = static_cast<int64_t>(requests.size());
    report.responses.resize(requests.size());

    engine::EngineOptions engineOptions = options_.engine;
    engineOptions.planCache = options_.cache;
    const ExecContext ctx{engineOptions, options_.cache, &flights_,
                          options_.serviceFloorUs};
    const Singleflight::Stats flightsBefore = flights_.stats();

    const auto wall0 = SteadyClock::now();
    std::atomic<size_t> next{0};
    auto worker = [&] {
        while (true) {
            const size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= requests.size())
                return;
            CompileResponse &resp = report.responses[i];
            const auto t0 = SteadyClock::now();
            executeAttempt(requests[i], ctx, std::nullopt, resp);
            resp.latencyUs = toUs(SteadyClock::now() - t0);
            latencyHistogram().observe(resp.latencyUs);
            recordOutcome(resp.outcome);
        }
    };
    if (report.threads == 1 || requests.size() <= 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(static_cast<size_t>(report.threads));
        for (int t = 0; t < report.threads; ++t)
            threads.emplace_back(worker);
        for (auto &t : threads)
            t.join();
    }
    const auto wall1 = SteadyClock::now();
    report.wallMs =
        std::chrono::duration<double, std::milli>(wall1 - wall0).count();

    finalizeReport(report);
    report.flightStats =
        flightStatsDelta(flightsBefore, flights_.stats());
    if (span.active()) {
        span.arg("requests", report.requests);
        span.arg("threads", report.threads);
        span.arg("failures", report.failures);
    }
    return report;
}

ServiceReport
CompileService::serve(const std::vector<CompileRequest> &stream,
                      const ServerConfig &cfg)
{
    trace::Span span("service.server", "service");
    static auto &runs = metrics::counter("service.server.runs");
    runs.inc();

    ServiceReport report;
    report.threads = std::max(options_.threads, 1);
    report.sloP99Ms = cfg.sloP99Ms;
    report.offeredRatePerSec = cfg.ratePerSec;
    if (stream.empty())
        return report;

    engine::EngineOptions engineOptions = options_.engine;
    engineOptions.planCache = options_.cache;
    const ExecContext ctx{engineOptions, options_.cache, &flights_,
                          options_.serviceFloorUs};
    const Singleflight::Stats flightsBefore = flights_.stats();

    const std::vector<double> offsets = poissonArrivalOffsetsUs(
        cfg.ratePerSec, cfg.durationSec, cfg.seed, cfg.maxRequests);
    report.requests = static_cast<int64_t>(offsets.size());

    AdmissionQueue queue({cfg.queueCapacity, cfg.policy});

    // Response slots live in a deque guarded by respMu: the generator
    // appends while workers write earlier slots, and deque growth never
    // moves an element. Exactly one thread writes any given slot — the
    // worker that popped its job, or the generator when it was shed.
    std::deque<CompileResponse> responses;
    std::mutex respMu;

    auto finalizeShed = [&](const ServerJob &job) {
        CompileResponse &resp = *job.response;
        resp.ok = false;
        resp.outcome = RequestOutcome::Shed;
        resp.error = "shed by admission control (" +
                     toString(cfg.policy) + ")";
        resp.latencyUs = toUs(SteadyClock::now() - job.arrival);
        recordOutcome(RequestOutcome::Shed);
    };

    auto worker = [&](int workerIndex) {
        std::mt19937_64 rng(cfg.seed ^
                            (0x9e3779b97f4a7c15ULL *
                             static_cast<uint64_t>(workerIndex + 1)));
        ServerJob job;
        while (queue.pop(job)) {
            CompileResponse &resp = *job.response;
            const auto tPop = SteadyClock::now();
            resp.queueUs = toUs(tPop - job.arrival);
            bool queueExpired = tPop >= job.deadline;
            if (LL_FAILPOINT("svc.queue.timeout"))
                queueExpired = true;
            if (queueExpired) {
                resp.ok = false;
                resp.name = job.request->name;
                resp.outcome = RequestOutcome::DeadlineExceeded;
                resp.error =
                    "[svc.queue.timeout] deadline-exceeded: request "
                    "out-waited its deadline in the admission queue";
                static auto &queueExpirations =
                    metrics::counter("service.deadline.queue_expired");
                queueExpirations.inc();
            } else {
                std::optional<SteadyClock::time_point> deadline;
                if (job.deadline != SteadyClock::time_point::max())
                    deadline = job.deadline;
                executeWithRetries(*job.request, ctx, deadline,
                                   cfg.retryBudget, cfg.retryBackoffMs,
                                   rng, resp);
            }
            resp.latencyUs = toUs(SteadyClock::now() - job.arrival);
            latencyHistogram().observe(resp.latencyUs);
            recordOutcome(resp.outcome);
        }
    };

    const auto wall0 = SteadyClock::now();
    std::vector<std::thread> workers;
    workers.reserve(static_cast<size_t>(report.threads));
    for (int t = 0; t < report.threads; ++t)
        workers.emplace_back(worker, t);

    // This thread is the open-loop generator: arrivals fire on the
    // precomputed schedule whether or not the workers keep up.
    for (size_t i = 0; i < offsets.size(); ++i) {
        const auto due =
            wall0 + std::chrono::duration_cast<SteadyClock::duration>(
                        std::chrono::duration<double, std::micro>(
                            offsets[i]));
        // Sleep the bulk of the gap, spin the last stretch — sub-ms
        // sleeps routinely overshoot by a scheduler quantum, which
        // would silently lower the offered rate.
        while (true) {
            const auto now = SteadyClock::now();
            if (now >= due)
                break;
            const auto remain = due - now;
            if (remain > std::chrono::microseconds(200))
                std::this_thread::sleep_for(
                    remain - std::chrono::microseconds(150));
        }

        const CompileRequest &req = stream[i % stream.size()];
        CompileResponse *slot = nullptr;
        {
            std::lock_guard<std::mutex> lock(respMu);
            responses.emplace_back();
            slot = &responses.back();
        }
        slot->name = req.name;

        ServerJob job;
        job.request = &req;
        job.response = slot;
        job.arrival = SteadyClock::now();
        job.seq = static_cast<uint64_t>(i);
        if (cfg.deadlineMs > 0.0)
            job.deadline =
                job.arrival +
                std::chrono::duration_cast<SteadyClock::duration>(
                    std::chrono::duration<double, std::milli>(
                        cfg.deadlineMs));
        const ServerJob offered = job;

        std::vector<ServerJob> shedOldest;
        const auto pushed = queue.push(std::move(job), shedOldest);
        for (const auto &old : shedOldest)
            finalizeShed(old);
        if (pushed == AdmissionQueue::PushResult::Shed)
            finalizeShed(offered);
    }
    queue.close();
    for (auto &t : workers)
        t.join();
    const auto wall1 = SteadyClock::now();
    report.wallMs =
        std::chrono::duration<double, std::milli>(wall1 - wall0).count();

    report.responses.reserve(responses.size());
    for (auto &resp : responses)
        report.responses.push_back(std::move(resp));
    finalizeReport(report);
    report.queueStats = queue.stats();
    report.flightStats =
        flightStatsDelta(flightsBefore, flights_.stats());
    report.goodputPerSec =
        report.wallMs > 0.0
            ? static_cast<double>(report.planned) * 1e3 / report.wallMs
            : 0.0;
    report.sloOk = cfg.sloP99Ms <= 0.0 ||
                   report.p99LatencyUs <= cfg.sloP99Ms * 1e3;
    if (span.active()) {
        span.arg("requests", report.requests);
        span.arg("threads", report.threads);
        span.arg("planned", report.planned);
        span.arg("shed", report.shed);
        span.arg("deadline_exceeded", report.deadlineExceeded);
        span.arg("failed", report.failed);
    }
    return report;
}

} // namespace service
} // namespace ll
