#include "service/compile_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "support/metrics.h"
#include "support/trace.h"

namespace ll {
namespace service {

namespace {

double
percentile(std::vector<double> samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    size_t rank = static_cast<size_t>(
        p / 100.0 * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[std::min(rank, samples.size() - 1)];
}

metrics::Histogram &
latencyHistogram()
{
    static auto &h = metrics::Registry::instance().histogram(
        "service.request_latency_us",
        {50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000,
         100000});
    return h;
}

/** Run one request into its response slot. Never throws. */
void
executeRequest(const CompileRequest &req,
               const engine::EngineOptions &engineOptions,
               PlanCache *cache, CompileResponse &resp)
{
    trace::Span span("service.request", "service");
    if (span.active())
        span.arg("name", req.name);
    resp.name = req.name;
    const auto t0 = std::chrono::steady_clock::now();
    try {
        if (req.build) {
            ir::Function f = req.build();
            engine::LayoutEngine eng{engineOptions};
            resp.stats = eng.run(f);
            resp.ok = resp.stats.planFailures == 0 &&
                      resp.stats.execFailures == 0;
            if (!resp.ok)
                resp.error = "engine downgraded " +
                             std::to_string(resp.stats.planFailures +
                                            resp.stats.execFailures) +
                             " conversion(s) to convert:unplanned";
        } else if (req.conversion) {
            const ConversionRequest &c = *req.conversion;
            auto outcome = serveConversion(cache, c.src, c.dst,
                                           c.elemBytes, c.spec);
            resp.ok = outcome.planned();
            resp.error = outcome.error;
            if (outcome.fromCache) {
                if (outcome.cachedRejection) {
                    resp.stats.planCacheNegativeHits = 1;
                    resp.stats.planFailures = 1;
                } else {
                    resp.stats.planCacheHits = 1;
                    resp.stats.convertsPlanned = 1;
                }
            } else {
                if (cache != nullptr)
                    resp.stats.planCacheMisses = 1;
                if (outcome.execFailed)
                    resp.stats.execFailures = 1;
                else if (outcome.plan)
                    resp.stats.convertsPlanned = 1;
                else
                    resp.stats.planFailures = 1;
            }
        } else {
            resp.error = "request carries neither a kernel builder nor "
                         "a conversion";
        }
    } catch (const std::exception &e) {
        resp.ok = false;
        resp.error = e.what();
    }
    const auto t1 = std::chrono::steady_clock::now();
    resp.latencyUs =
        std::chrono::duration<double, std::micro>(t1 - t0).count();
    latencyHistogram().observe(resp.latencyUs);
    if (span.active())
        span.arg("outcome", resp.ok ? "ok" : "failed");
}

} // namespace

void
accumulateStats(engine::EngineStats &into,
                const engine::EngineStats &from)
{
    into.convertsInserted += from.convertsInserted;
    into.convertsEliminated += from.convertsEliminated;
    into.convertsPlanned += from.convertsPlanned;
    into.planFallbacks += from.planFallbacks;
    into.planFailures += from.planFailures;
    into.transferFallbacks += from.transferFallbacks;
    into.execFallbacks += from.execFallbacks;
    into.execFailures += from.execFailures;
    into.smokeCacheHits += from.smokeCacheHits;
    into.planCacheHits += from.planCacheHits;
    into.planCacheNegativeHits += from.planCacheNegativeHits;
    into.planCacheMisses += from.planCacheMisses;
    into.planDiagnostics.insert(into.planDiagnostics.end(),
                                from.planDiagnostics.begin(),
                                from.planDiagnostics.end());
    for (const auto &[name, delta] : from.metrics)
        into.metrics[name] += delta;
}

CompileService::CompileService(Options options)
    : options_(std::move(options))
{
}

ServiceReport
CompileService::run(const std::vector<CompileRequest> &requests)
{
    trace::Span span("service.batch", "service");
    static auto &runs = metrics::counter("service.batch.runs");
    runs.inc();

    ServiceReport report;
    report.threads = std::max(options_.threads, 1);
    report.requests = static_cast<int64_t>(requests.size());
    report.responses.resize(requests.size());

    engine::EngineOptions engineOptions = options_.engine;
    engineOptions.planCache = options_.cache;

    const auto wall0 = std::chrono::steady_clock::now();
    std::atomic<size_t> next{0};
    auto worker = [&] {
        while (true) {
            const size_t i =
                next.fetch_add(1, std::memory_order_relaxed);
            if (i >= requests.size())
                return;
            executeRequest(requests[i], engineOptions, options_.cache,
                           report.responses[i]);
        }
    };
    if (report.threads == 1 || requests.size() <= 1) {
        worker();
    } else {
        std::vector<std::thread> threads;
        threads.reserve(static_cast<size_t>(report.threads));
        for (int t = 0; t < report.threads; ++t)
            threads.emplace_back(worker);
        for (auto &t : threads)
            t.join();
    }
    const auto wall1 = std::chrono::steady_clock::now();
    report.wallMs =
        std::chrono::duration<double, std::milli>(wall1 - wall0).count();

    static auto &served = metrics::counter("service.requests");
    served.add(report.requests);
    std::vector<double> latencies;
    latencies.reserve(report.responses.size());
    for (const auto &resp : report.responses) {
        if (!resp.ok)
            ++report.failures;
        latencies.push_back(resp.latencyUs);
        accumulateStats(report.totals, resp.stats);
    }
    if (report.failures > 0) {
        static auto &failures =
            metrics::counter("service.request_failures");
        failures.add(report.failures);
    }
    report.p50LatencyUs = percentile(latencies, 50.0);
    report.p90LatencyUs = percentile(latencies, 90.0);
    report.requestsPerSec =
        report.wallMs > 0.0
            ? static_cast<double>(report.requests) * 1e3 / report.wallMs
            : 0.0;
    if (span.active()) {
        span.arg("requests", report.requests);
        span.arg("threads", report.threads);
        span.arg("failures", report.failures);
    }
    return report;
}

} // namespace service
} // namespace ll
