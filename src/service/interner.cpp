#include "service/interner.h"

#include "support/metrics.h"

namespace ll {
namespace service {

LayoutRef
LayoutInterner::intern(const LinearLayout &layout)
{
    const uint64_t hash = layout.structuralHash();
    Shard &shard = shards_[hash % kShards];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto &chain = shard.buckets[hash];
    for (const auto &entry : chain) {
        if (*entry == layout) {
            ++shard.hits;
            static auto &hits = metrics::counter("service.intern.hits");
            hits.inc();
            return entry.get();
        }
    }
    ++shard.misses;
    static auto &misses = metrics::counter("service.intern.misses");
    misses.inc();
    chain.push_back(std::make_unique<const LinearLayout>(layout));
    return chain.back().get();
}

int64_t
LayoutInterner::size() const
{
    int64_t n = 0;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        for (const auto &[hash, chain] : shard.buckets)
            n += static_cast<int64_t>(chain.size());
    }
    return n;
}

LayoutInterner::Stats
LayoutInterner::stats() const
{
    Stats s;
    for (const Shard &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mu);
        s.hits += shard.hits;
        s.misses += shard.misses;
    }
    return s;
}

LayoutInterner &
LayoutInterner::global()
{
    static LayoutInterner interner;
    return interner;
}

} // namespace service
} // namespace ll
