#include "service/singleflight.h"

#include "support/failpoint.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace ll {
namespace service {

FlightResult
Singleflight::run(
    const PlanKey &key, const std::function<ConversionOutcome()> &work,
    std::optional<std::chrono::steady_clock::time_point> deadline)
{
    std::shared_ptr<Flight> flight;
    bool leader = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = flights_.find(key);
        if (it == flights_.end()) {
            flight = std::make_shared<Flight>();
            flights_.emplace(key, flight);
            leader = true;
            ++stats_.leaders;
        } else {
            flight = it->second;
            ++stats_.followers;
        }
    }

    FlightResult result;
    if (leader) {
        trace::Span span("service.singleflight", "service");
        span.arg("role", "leader");
        static auto &leaders =
            metrics::counter("service.singleflight.leader");
        leaders.inc();
        result.role = FlightRole::Leader;
        result.outcome = work();
        {
            std::lock_guard<std::mutex> lock(flight->mu);
            flight->outcome = result.outcome;
            flight->done = true;
        }
        flight->cv.notify_all();
        {
            // Close the flight: later callers re-consult the cache and,
            // only on a genuine miss, open a fresh one.
            std::lock_guard<std::mutex> lock(mu_);
            auto it = flights_.find(key);
            if (it != flights_.end() && it->second == flight)
                flights_.erase(it);
        }
        return result;
    }

    trace::Span span("service.singleflight", "service");
    span.arg("role", "follower");
    static auto &followers =
        metrics::counter("service.singleflight.follower");
    followers.inc();
    std::unique_lock<std::mutex> lock(flight->mu);
    ++flight->waiters;
    bool done;
    if (deadline.has_value()) {
        done = flight->cv.wait_until(lock, *deadline,
                                     [&] { return flight->done; });
    } else {
        flight->cv.wait(lock, [&] { return flight->done; });
        done = true;
    }
    --flight->waiters;
    if (!done) {
        lock.unlock();
        {
            std::lock_guard<std::mutex> slock(mu_);
            ++stats_.timeouts;
        }
        static auto &timeouts =
            metrics::counter("service.singleflight.timeout");
        timeouts.inc();
        span.arg("outcome", "timeout");
        result.role = FlightRole::TimedOut;
        result.outcome.error =
            "[svc.singleflight] deadline-exceeded: deadline expired "
            "while waiting on the in-flight plan";
        return result;
    }
    result.role = FlightRole::Follower;
    result.outcome = flight->outcome;
    return result;
}

int
Singleflight::waiters(const PlanKey &key) const
{
    std::shared_ptr<Flight> flight;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = flights_.find(key);
        if (it == flights_.end())
            return 0;
        flight = it->second;
    }
    std::lock_guard<std::mutex> lock(flight->mu);
    return flight->waiters;
}

Singleflight::Stats
Singleflight::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

FlightResult
serveConversionCoalesced(
    PlanCache *cache, Singleflight *flights, const LinearLayout &src,
    const LinearLayout &dst, int elemBytes, const sim::GpuSpec &spec,
    std::optional<std::chrono::steady_clock::time_point> deadline)
{
    FlightResult result;
    if (cache == nullptr || flights == nullptr) {
        result.outcome =
            serveConversion(cache, src, dst, elemBytes, spec);
        result.role = FlightRole::Leader;
        return result;
    }

    const PlanKey key = cache->key(src, dst, elemBytes, spec);
    if (auto hit = cache->lookup(key)) {
        result.role = FlightRole::Leader; // served directly, no flight
        result.outcome.fromCache = true;
        if (hit->negative()) {
            result.outcome.cachedRejection = true;
            result.outcome.error = hit->rejection->toString();
        } else {
            result.outcome.plan = hit->plan;
        }
        return result;
    }

    return flights->run(
        key,
        [&]() -> ConversionOutcome {
            if (LL_FAILPOINT("svc.singleflight.leader")) {
                ConversionOutcome out;
                out.error = makeDiag(DiagCode::FailpointInjected,
                                     "svc.singleflight.leader",
                                     "failpoint failed the singleflight "
                                     "leader before planning")
                                .toString();
                return out;
            }
            // Double-check: a previous flight may have published this
            // key between our counted miss and this flight opening.
            // peek() is stat-free, so the request still records exactly
            // one lookup, and an expired negative reads as a miss.
            if (auto hit = cache->peek(key)) {
                ConversionOutcome out;
                out.fromCache = true;
                if (hit->negative()) {
                    out.cachedRejection = true;
                    out.error = hit->rejection->toString();
                } else {
                    out.plan = hit->plan;
                }
                return out;
            }
            return planAndPublish(cache, &key, src, dst, elemBytes,
                                  spec);
        },
        deadline);
}

} // namespace service
} // namespace ll
