#include "service/cute_service.h"

#include "service/conversion_service.h"
#include "support/trace.h"

namespace ll {
namespace service {

CuteConversionOutcome
serveCuteConversion(PlanCache *cache,
                    const cute::CuteConversionRequest &req,
                    const sim::GpuSpec &spec)
{
    trace::Span span("service.cute", "service");
    CuteConversionOutcome out;

    auto factored = [&]() -> Result<cute::CutePlan> {
        try {
            return cute::decomposeCuteConversion(req, spec);
        } catch (const std::exception &e) {
            return makeDiag(DiagCode::PlannerInternalError,
                            "service.cute",
                            std::string("decomposition threw: ") +
                                e.what());
        }
    }();
    if (!factored.ok()) {
        out.error = factored.diag().toString();
        span.arg("outcome", "invalid");
        return out;
    }
    cute::CutePlan plan = std::move(*factored);
    out.decomposed = plan.remainderElems > 0;

    if (!plan.needsCorePlan()) {
        out.plan = std::move(plan);
        span.arg("outcome", "scalar-only");
        return out;
    }

    // The core pair is an ordinary (src, dst, elemBytes, spec) request:
    // interned keys, sharded cache, singleflight-compatible.
    auto core = serveConversion(cache, plan.coreSrc, plan.coreDst,
                                req.elemBytes, spec);
    out.coreFromCache = core.fromCache;
    out.cachedRejection = core.cachedRejection;
    out.execFailed = core.execFailed;
    if (!core.plan) {
        out.error = core.error;
        span.arg("outcome", "core-plan-failed");
        return out;
    }
    plan.corePlan = *core.plan;
    plan.hasCorePlan = true;
    if (core.execFailed) {
        out.error = core.error;
        out.plan = std::move(plan);
        span.arg("outcome", "core-exec-failed");
        return out;
    }
    out.plan = std::move(plan);
    span.arg("outcome", out.decomposed ? "decomposed" : "bridged");
    return out;
}

} // namespace service
} // namespace ll
