/**
 * @file
 * Cache-aware single-conversion service path.
 *
 * serveConversion() is what the compilation service does for one
 * conversion request: consult the shared plan cache, and on a miss run
 * the planner plus a smoke execution before publishing the plan for
 * every later requester. It mirrors how the layout engine treats one
 * ConvertLayout op (llstat's replayCase, made amortized); the engine
 * itself integrates the same cache through
 * engine::EngineOptions::planCache, with its richer demotion loop.
 *
 * Span: "service.conversion" (cat "service") with an "outcome" arg of
 * cache-hit | cached-rejection | planned | plan-failed | exec-failed.
 */

#ifndef LL_SERVICE_CONVERSION_SERVICE_H
#define LL_SERVICE_CONVERSION_SERVICE_H

#include <memory>
#include <string>

#include "codegen/conversion.h"
#include "service/plan_cache.h"

namespace ll {
namespace service {

struct ConversionOutcome
{
    /** The (possibly shared) plan; null when planning failed. */
    std::shared_ptr<const codegen::ConversionPlan> plan;
    bool fromCache = false;
    /** The failure was served from a memoized InvalidInput entry. */
    bool cachedRejection = false;
    /** Planning succeeded but the smoke execution failed (the plan is
     *  still returned for diagnosis; it was not cached). */
    bool execFailed = false;
    /** Planner / executor failure rendering; empty on success. */
    std::string error;

    bool planned() const { return plan != nullptr && !execFailed; }
};

/**
 * Serve one conversion request against `cache` (nullptr = plan fresh
 * every time, the --no-cache baseline). Never throws on planner
 * trouble: failures come back in the outcome.
 */
ConversionOutcome serveConversion(PlanCache *cache,
                                  const LinearLayout &src,
                                  const LinearLayout &dst, int elemBytes,
                                  const sim::GpuSpec &spec);

/**
 * The post-lookup half of serveConversion: plan, smoke-execute, publish
 * to `cache` under `key` (both may be null — the --no-cache path). The
 * caller has already taken the cache miss; this never performs (or
 * counts) a lookup. The singleflight leader calls this after its
 * stat-free peek() double-check so each request records exactly one
 * cache lookup no matter how the flight resolves.
 */
ConversionOutcome planAndPublish(PlanCache *cache, const PlanKey *key,
                                 const LinearLayout &src,
                                 const LinearLayout &dst, int elemBytes,
                                 const sim::GpuSpec &spec);

} // namespace service
} // namespace ll

#endif // LL_SERVICE_CONVERSION_SERVICE_H
