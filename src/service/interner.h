/**
 * @file
 * Layout interning (hash-consing) for the compilation service.
 *
 * Every conversion decision in the pipeline is a pure function of
 * `(src layout, dst layout, elemBytes, GpuSpec)`, so a serving-scale
 * deployment wants layouts to act like small value handles: cache keys
 * must be pointer-sized and layout equality O(1) instead of a walk
 * over the F2 basis matrices. The interner provides exactly that — a
 * thread-safe hash-consing table mapping structurally equal
 * LinearLayouts (LinearLayout::structuralHash + operator==) to one
 * canonical immutable object whose address is the `LayoutRef` handle.
 *
 * Interned layouts live for the lifetime of the interner and are never
 * evicted, so a LayoutRef never dangles and the plan cache may key on
 * raw pointers. The table is sharded by hash with per-shard mutexes so
 * concurrent compilation threads do not serialize on one lock.
 *
 * Metric family: service.intern.{hits,misses} (process-global).
 */

#ifndef LL_SERVICE_INTERNER_H
#define LL_SERVICE_INTERNER_H

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "layout/linear_layout.h"

namespace ll {
namespace service {

/**
 * A canonical handle to an interned layout: stable for the interner's
 * lifetime, equal as a pointer iff the layouts are structurally equal.
 */
using LayoutRef = const LinearLayout *;

class LayoutInterner
{
  public:
    LayoutInterner() = default;
    LayoutInterner(const LayoutInterner &) = delete;
    LayoutInterner &operator=(const LayoutInterner &) = delete;

    /**
     * The canonical object for `layout`: an existing entry when a
     * structurally equal layout was interned before, otherwise a copy
     * made now. The returned pointer is valid until the interner is
     * destroyed (the global() interner: process lifetime).
     */
    LayoutRef intern(const LinearLayout &layout);

    /** Distinct layouts interned so far. */
    int64_t size() const;

    struct Stats
    {
        int64_t hits = 0;   ///< intern() found an existing entry
        int64_t misses = 0; ///< intern() created a new entry
    };
    Stats stats() const;

    /** The process-wide interner most callers share. */
    static LayoutInterner &global();

  private:
    static constexpr int kShards = 16;

    struct Shard
    {
        mutable std::mutex mu;
        /** structuralHash -> entries with that hash (collision chain;
         *  resolved with full operator== comparison). */
        std::unordered_map<uint64_t,
                           std::vector<std::unique_ptr<const LinearLayout>>>
            buckets;
        int64_t hits = 0;
        int64_t misses = 0;
    };

    Shard shards_[kShards];
};

} // namespace service
} // namespace ll

#endif // LL_SERVICE_INTERNER_H
