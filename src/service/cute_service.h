/**
 * @file
 * Cache-aware service entry for cute (non-pow2) conversion requests.
 *
 * The admission pass factors a CuteConversionRequest into a pow2 core
 * (two distributed LinearLayouts and a ladder plan between them) plus
 * a windowed scalar remainder. The core pair is exactly the shape of
 * thing the service layer already interns and caches: two structural
 * LinearLayouts, an element width, and a GpuSpec fingerprint. This
 * entry point routes the core through serveConversion(), so bridged
 * layouts share the interner and the sharded plan cache with every
 * ordinary F2 request — two different non-pow2 logical shapes whose
 * floor-pow2 cores coincide hit the same cached plan.
 *
 * Where serveConversion rejects malformed requests with InvalidInput,
 * this entry distinguishes malformed (InvalidInput, memoizable) from
 * well-formed non-pow2 (DiagCode::NonPow2Bridgeable, which is not a
 * rejection at all here: it simply marks the request as taking the
 * decomposition path).
 *
 * Span: "service.cute" (cat "service") with an "outcome" arg.
 */

#ifndef LL_SERVICE_CUTE_SERVICE_H
#define LL_SERVICE_CUTE_SERVICE_H

#include <optional>
#include <string>

#include "cute/admit.h"
#include "service/plan_cache.h"

namespace ll {
namespace service {

struct CuteConversionOutcome
{
    /** The assembled plan; disengaged when planning failed. */
    std::optional<cute::CutePlan> plan;
    /** The request's logical shape had a non-pow2 extent and went
     *  through the decomposition path. */
    bool decomposed = false;
    /** The core's ladder plan came from the shared plan cache. */
    bool coreFromCache = false;
    /** The core failure was served from a memoized rejection. */
    bool cachedRejection = false;
    /** Core planning succeeded but its smoke execution failed. */
    bool execFailed = false;
    /** Failure rendering; empty on success. */
    std::string error;

    bool planned() const { return plan.has_value() && !execFailed; }
};

/**
 * Serve one cute conversion request against `cache` (nullptr = plan
 * fresh every time). Never throws on planner trouble.
 */
CuteConversionOutcome serveCuteConversion(
    PlanCache *cache, const cute::CuteConversionRequest &req,
    const sim::GpuSpec &spec);

} // namespace service
} // namespace ll

#endif // LL_SERVICE_CUTE_SERVICE_H
