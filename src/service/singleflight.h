/**
 * @file
 * Per-cache-key singleflight latch for the compilation service.
 *
 * N threads missing the same cold PlanKey concurrently would each run
 * the full plan+smoke pipeline and race to insert the same immutable
 * plan — on a shuffled cold stream at 8 threads that is ~1.5x the ideal
 * miss count of wasted planner work. Singleflight coalesces them: the
 * first thread to open a flight for a key becomes the *leader* and runs
 * the work; every other thread arriving while the flight is open is a
 * *follower* that blocks on the flight's latch and receives a copy of
 * the leader's outcome. Failures propagate to followers exactly like
 * successes but are never cached (the leader's publish path enforces
 * the PR-5 failures-never-cached policy; followers never touch the
 * cache at all).
 *
 * A follower with a deadline waits only until the deadline: on timeout
 * it reports DeadlineExceeded and walks away while the flight keeps
 * flying for everyone else.
 *
 * Metrics: service.singleflight.{leader,follower,timeout}. Spans:
 * "service.singleflight" (cat "service") with a role arg. Failpoint:
 * "svc.singleflight.leader" fails the leader's work before planning —
 * the canonical leader-failure drill (followers all see the failure,
 * nothing is cached).
 */

#ifndef LL_SERVICE_SINGLEFLIGHT_H
#define LL_SERVICE_SINGLEFLIGHT_H

#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "service/conversion_service.h"
#include "service/plan_cache.h"

namespace ll {
namespace service {

/** How a singleflight participant obtained its outcome. */
enum class FlightRole
{
    Leader,   ///< opened the flight and ran the work
    Follower, ///< waited on an open flight for the leader's outcome
    TimedOut, ///< follower whose deadline expired while waiting
};

struct FlightResult
{
    ConversionOutcome outcome;
    FlightRole role = FlightRole::Leader;
};

class Singleflight
{
  public:
    Singleflight() = default;
    Singleflight(const Singleflight &) = delete;
    Singleflight &operator=(const Singleflight &) = delete;

    /**
     * Coalesce `work` on `key`. Exactly one concurrent caller per key
     * runs `work` (the leader); the rest wait for its outcome, or until
     * `deadline` if one is given. The flight closes when the leader
     * publishes, so a later caller opens a fresh flight — it is the
     * caller's cache lookup (or the leader's peek) that prevents
     * re-planning an already published key.
     */
    FlightResult
    run(const PlanKey &key,
        const std::function<ConversionOutcome()> &work,
        std::optional<std::chrono::steady_clock::time_point> deadline =
            std::nullopt);

    /** Followers currently blocked on `key`'s flight (0 when no flight
     *  is open). Test/introspection hook — the leader of a controlled
     *  flight can hold its work open until every expected follower has
     *  joined, making coalescing deterministic to assert. */
    int waiters(const PlanKey &key) const;

    struct Stats
    {
        int64_t leaders = 0;
        int64_t followers = 0;
        int64_t timeouts = 0;
    };
    Stats stats() const;

  private:
    struct Flight
    {
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        int waiters = 0;
        ConversionOutcome outcome;
    };

    mutable std::mutex mu_;
    std::unordered_map<PlanKey, std::shared_ptr<Flight>, PlanKeyHash>
        flights_;
    Stats stats_;
};

/**
 * The service's coalesced conversion path: one counted cache lookup,
 * then — on a miss — a singleflight on the key. The leader re-checks
 * the cache with a stat-free peek() (a racing flight may have published
 * between the miss and the flight opening) before running the
 * plan+smoke+publish pipeline; followers receive the leader's outcome
 * without touching the cache. With a null `cache` or `flights` the call
 * degrades to plain serveConversion.
 */
FlightResult serveConversionCoalesced(
    PlanCache *cache, Singleflight *flights, const LinearLayout &src,
    const LinearLayout &dst, int elemBytes, const sim::GpuSpec &spec,
    std::optional<std::chrono::steady_clock::time_point> deadline =
        std::nullopt);

} // namespace service
} // namespace ll

#endif // LL_SERVICE_SINGLEFLIGHT_H
