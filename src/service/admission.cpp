#include "service/admission.h"

#include <algorithm>

#include "support/failpoint.h"
#include "support/metrics.h"
#include "support/trace.h"

namespace ll {
namespace service {

std::string
toString(AdmissionPolicy policy)
{
    switch (policy) {
      case AdmissionPolicy::Block:
        return "block";
      case AdmissionPolicy::ShedNewest:
        return "shed-newest";
      case AdmissionPolicy::ShedOldest:
        return "shed-oldest";
    }
    return "unknown";
}

std::optional<AdmissionPolicy>
parseAdmissionPolicy(const std::string &s)
{
    if (s == "block")
        return AdmissionPolicy::Block;
    if (s == "shed-newest")
        return AdmissionPolicy::ShedNewest;
    if (s == "shed-oldest")
        return AdmissionPolicy::ShedOldest;
    return std::nullopt;
}

AdmissionQueue::AdmissionQueue(Config config)
    : config_{std::max<size_t>(config.capacity, 1), config.policy}
{
}

AdmissionQueue::PushResult
AdmissionQueue::push(ServerJob job, std::vector<ServerJob> &shed)
{
    trace::Span span("service.admit", "service");
    if (span.active())
        span.arg("policy", toString(config_.policy));

    // The admission-control fault drill: shed regardless of capacity.
    if (LL_FAILPOINT("svc.admit")) {
        static auto &fpShed =
            metrics::counter("service.admit.failpoint_shed");
        fpShed.inc();
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.shedFailpoint;
        span.arg("outcome", "shed-failpoint");
        return PushResult::Shed;
    }

    std::unique_lock<std::mutex> lock(mu_);
    if (config_.policy == AdmissionPolicy::Block) {
        cvSpace_.wait(lock, [&] {
            return closed_ || queue_.size() < config_.capacity;
        });
    }
    if (closed_) {
        ++stats_.shedClosed;
        span.arg("outcome", "shed-closed");
        return PushResult::Shed;
    }
    if (queue_.size() >= config_.capacity) {
        if (config_.policy == AdmissionPolicy::ShedNewest) {
            ++stats_.shedNewest;
            static auto &shedNew =
                metrics::counter("service.admit.shed_newest");
            shedNew.inc();
            span.arg("outcome", "shed-newest");
            if (span.active())
                span.arg("depth",
                         static_cast<int64_t>(queue_.size()));
            return PushResult::Shed;
        }
        // ShedOldest: make room by evicting from the head — those jobs
        // have waited longest and are closest to their deadlines.
        while (queue_.size() >= config_.capacity) {
            shed.push_back(std::move(queue_.front()));
            queue_.pop_front();
            ++stats_.shedOldest;
            static auto &shedOld =
                metrics::counter("service.admit.shed_oldest");
            shedOld.inc();
        }
    }
    queue_.push_back(std::move(job));
    ++stats_.admitted;
    stats_.maxDepth = std::max(stats_.maxDepth,
                               static_cast<int64_t>(queue_.size()));
    static auto &admitted = metrics::counter("service.admit.admitted");
    admitted.inc();
    if (span.active()) {
        span.arg("outcome", "admitted");
        span.arg("depth", static_cast<int64_t>(queue_.size()));
    }
    lock.unlock();
    cvItems_.notify_one();
    return PushResult::Admitted;
}

bool
AdmissionQueue::pop(ServerJob &out)
{
    std::unique_lock<std::mutex> lock(mu_);
    cvItems_.wait(lock, [&] { return closed_ || !queue_.empty(); });
    if (queue_.empty())
        return false; // closed and drained
    out = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    cvSpace_.notify_one();
    return true;
}

void
AdmissionQueue::close()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        closed_ = true;
    }
    cvSpace_.notify_all();
    cvItems_.notify_all();
}

size_t
AdmissionQueue::depth() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
}

AdmissionQueue::Stats
AdmissionQueue::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace service
} // namespace ll
