#include "triton/encodings.h"

#include <algorithm>

#include "support/bits.h"

namespace ll {
namespace triton {

namespace {

using dims::kLane;
using dims::kOffset;
using dims::kReg;
using dims::kWarp;

/** An empty layout that pins the canonical in-dim order reg/lane/warp
 *  and registers output dim `firstOut`, so products append bits into a
 *  predictable flattened ordering. */
LinearLayout
distributedSeed(const std::string &firstOut)
{
    return LinearLayout::identity1D(1, kReg, firstOut) *
           LinearLayout::identity1D(1, kLane, firstOut) *
           LinearLayout::identity1D(1, kWarp, firstOut);
}

/**
 * Append `count` copies of resource `res` along logical dim d: identity
 * while the tensor still has room (tracked in `remaining`), broadcast
 * (zero bases) beyond it — the "tensor replicated to cover the tile"
 * behaviour of legacy layouts.
 */
void
appendResource(LinearLayout &layout, Shape &remaining, int32_t count,
               const std::string &res, int d)
{
    llUserCheck(isPowerOf2(static_cast<uint64_t>(count)),
                "resource count must be a power of two");
    int32_t use = std::min(count, remaining[d]);
    if (use > 1)
        layout = layout * LinearLayout::identity1D(use, res, dims::out(d));
    if (count > use) {
        layout = layout *
                 LinearLayout::zeros1D(count / use, res, dims::out(d));
    }
    remaining[d] /= use;
}

/** Make sure every logical dim has an out entry (size >= 1) and reorder
 *  outs minor-to-major per `order`. */
LinearLayout
canonicalizeOuts(LinearLayout layout, const Shape &shape,
                 const std::vector<int32_t> &order)
{
    for (size_t d = 0; d < shape.size(); ++d) {
        if (!layout.hasOutDim(dims::out(static_cast<int>(d)))) {
            layout = layout * LinearLayout::identity1D(
                                  1, kReg, dims::out(static_cast<int>(d)));
        }
    }
    std::vector<std::string> outOrder;
    for (int32_t d : order)
        outOrder.push_back(dims::out(d));
    return layout.transposeOuts(outOrder)
        .transposeIns({kReg, kLane, kWarp});
}

/**
 * Zero every basis coordinate that falls outside `shape` and shrink the
 * output dims accordingly. This is how an instruction tile larger than
 * the tensor degrades into a broadcast layout (small-shape MMA support,
 * cf. Table 5 of the paper).
 */
LinearLayout
clampToShape(const LinearLayout &layout, const Shape &shape)
{
    LinearLayout::BasesT newBases;
    auto outNames = layout.getOutDimNames();
    std::vector<int32_t> limit;
    for (const auto &name : outNames) {
        // Out dims are named dim<k>; recover k.
        int k = std::stoi(name.substr(3));
        limit.push_back(shape[k]);
    }
    for (const auto &inDim : layout.getInDimNames()) {
        std::vector<std::vector<int32_t>> vecs;
        for (int32_t i = 0; i < layout.getInDimSizeLog2(inDim); ++i) {
            std::vector<int32_t> basis = layout.getBasis(inDim, i);
            for (size_t j = 0; j < basis.size(); ++j) {
                if (basis[j] >= limit[j])
                    basis[j] = 0;
            }
            vecs.push_back(std::move(basis));
        }
        newBases.insert(inDim, std::move(vecs));
    }
    std::vector<LinearLayout::DimSize> newOuts;
    for (size_t j = 0; j < outNames.size(); ++j) {
        newOuts.emplace_back(
            outNames[j],
            std::min(layout.getOutDimSize(outNames[j]), limit[j]));
    }
    return LinearLayout(std::move(newBases), std::move(newOuts),
                        /*requireSurjective=*/false);
}

} // namespace

std::vector<int32_t>
rowMajorOrder(int rank)
{
    std::vector<int32_t> order(static_cast<size_t>(rank));
    for (int i = 0; i < rank; ++i)
        order[i] = rank - 1 - i;
    return order;
}

// ----------------------------------------------------------------------
// Blocked
// ----------------------------------------------------------------------

LinearLayout
BlockedEncoding::toLinearLayout(const Shape &shape) const
{
    const size_t rank = shape.size();
    llUserCheck(sizePerThread.size() == rank &&
                    threadsPerWarp.size() == rank &&
                    warpsPerCta.size() == rank && order.size() == rank,
                "blocked encoding rank mismatch with shape rank " << rank);

    Shape remaining = shape;
    LinearLayout layout = distributedSeed(dims::out(order[0]));
    for (int32_t d : order)
        appendResource(layout, remaining, sizePerThread[d], kReg, d);
    for (int32_t d : order)
        appendResource(layout, remaining, threadsPerWarp[d], kLane, d);
    for (int32_t d : order)
        appendResource(layout, remaining, warpsPerCta[d], kWarp, d);
    // Whatever the CTA tile does not cover is replicated into registers.
    for (int32_t d : order)
        appendResource(layout, remaining, remaining[d], kReg, d);
    return canonicalizeOuts(std::move(layout), shape, order);
}

BlockedEncoding
BlockedEncoding::makeDefault(const Shape &shape, int numWarps, int warpSize,
                             int vecWidth)
{
    return makeDefaultWithOrder(shape, rowMajorOrder(
                                           static_cast<int>(shape.size())),
                                numWarps, warpSize, vecWidth);
}

BlockedEncoding
BlockedEncoding::makeDefaultWithOrder(const Shape &shape,
                                      const std::vector<int32_t> &order,
                                      int numWarps, int warpSize,
                                      int vecWidth)
{
    const int rank = static_cast<int>(shape.size());
    llUserCheck(static_cast<int>(order.size()) == rank,
                "blocked order rank " << order.size()
                                      << " mismatches shape rank "
                                      << rank);
    BlockedEncoding enc;
    enc.order = order;
    enc.sizePerThread.assign(rank, 1);
    enc.threadsPerWarp.assign(rank, 1);
    enc.warpsPerCta.assign(rank, 1);

    // Vectorize the fastest dim, then fill threads along the fastest
    // dims, then warps along the remaining (slowest-first preference).
    Shape remaining = shape;
    int fast = enc.order[0];
    enc.sizePerThread[fast] =
        std::min<int32_t>(vecWidth, remaining[fast]);
    remaining[fast] /= enc.sizePerThread[fast];

    int threadsLeft = warpSize;
    for (int32_t d : enc.order) {
        int32_t use = std::min<int32_t>(threadsLeft, remaining[d]);
        enc.threadsPerWarp[d] = use;
        remaining[d] /= use;
        threadsLeft /= use;
        if (threadsLeft == 1)
            break;
    }
    // Any leftover threads broadcast along the fastest dim.
    enc.threadsPerWarp[fast] *= threadsLeft;

    int warpsLeft = numWarps;
    for (auto it = enc.order.rbegin(); it != enc.order.rend(); ++it) {
        int32_t use = std::min<int32_t>(warpsLeft, remaining[*it]);
        enc.warpsPerCta[*it] = use;
        remaining[*it] /= use;
        warpsLeft /= use;
        if (warpsLeft == 1)
            break;
    }
    enc.warpsPerCta[enc.order.back()] *= warpsLeft;
    return enc;
}

// ----------------------------------------------------------------------
// NVIDIA MMA
// ----------------------------------------------------------------------

LinearLayout
MmaEncoding::instructionTile() const
{
    // The PTX mma.m16n8 accumulator fragment, built as the product of
    // identity pieces from Appendix 9.1:
    //   id_1^{Reg,dim1} x id_2^{Thr,dim1} x id_3^{Thr,dim0} x
    //   id_1^{Reg,dim0}
    LinearLayout tile = distributedSeed(dims::out(1)) *
                        LinearLayout::identity1D(2, kReg, dims::out(1)) *
                        LinearLayout::identity1D(4, kLane, dims::out(1)) *
                        LinearLayout::identity1D(8, kLane, dims::out(0)) *
                        LinearLayout::identity1D(2, kReg, dims::out(0));
    if (version == 3) {
        // wgmma m64nN: registers repeat along N in steps of 8, and the
        // four warps of the warp group stack along M.
        llUserCheck(instrN >= 8 && isPowerOf2(uint64_t(instrN)),
                    "wgmma instrN must be a power of two >= 8");
        tile = tile *
               LinearLayout::identity1D(instrN / 8, kReg, dims::out(1)) *
               LinearLayout::identity1D(4, kWarp, dims::out(0));
    }
    return tile;
}

LinearLayout
MmaEncoding::toLinearLayout(const Shape &shape) const
{
    llUserCheck(shape.size() == 2, "MMA layouts are 2D");
    llUserCheck(warpsPerCta.size() == 2, "warpsPerCta must be 2D");

    LinearLayout layout = clampToShape(instructionTile(), shape);
    Shape remaining = {shape[0] / layout.getOutDimSize(dims::out(0)),
                       shape[1] / layout.getOutDimSize(dims::out(1))};

    int32_t warpsDim0 =
        version == 3 ? std::max(warpsPerCta[0] / 4, 1) : warpsPerCta[0];
    appendResource(layout, remaining, warpsDim0, kWarp, 0);
    appendResource(layout, remaining, warpsPerCta[1], kWarp, 1);

    // Registers replicate the warp tile across the rest of the tensor,
    // minor dim first.
    appendResource(layout, remaining, remaining[1], kReg, 1);
    appendResource(layout, remaining, remaining[0], kReg, 0);
    return canonicalizeOuts(std::move(layout), shape, {1, 0});
}

// ----------------------------------------------------------------------
// AMD MFMA
// ----------------------------------------------------------------------

LinearLayout
MfmaEncoding::instructionTile() const
{
    // The CDNA mfma 32x32 accumulator fragment over a 64-lane wavefront:
    // lanes 0-31 pick the column; each lane holds 4 groups of 4
    // consecutive rows, with lane bit 5 selecting rows 4-7 of each 8-row
    // band.
    return distributedSeed(dims::out(1)) *
           LinearLayout::identity1D(4, kReg, dims::out(0)) *
           LinearLayout::identity1D(32, kLane, dims::out(1)) *
           LinearLayout::identity1D(2, kLane, dims::out(0)) *
           LinearLayout::identity1D(4, kReg, dims::out(0));
}

LinearLayout
MfmaEncoding::toLinearLayout(const Shape &shape) const
{
    llUserCheck(shape.size() == 2, "MFMA layouts are 2D");
    LinearLayout layout = clampToShape(instructionTile(), shape);
    Shape remaining = {shape[0] / layout.getOutDimSize(dims::out(0)),
                       shape[1] / layout.getOutDimSize(dims::out(1))};
    appendResource(layout, remaining, warpsPerCta[0], kWarp, 0);
    appendResource(layout, remaining, warpsPerCta[1], kWarp, 1);
    appendResource(layout, remaining, remaining[1], kReg, 1);
    appendResource(layout, remaining, remaining[0], kReg, 0);
    return canonicalizeOuts(std::move(layout), shape, {1, 0});
}

// ----------------------------------------------------------------------
// Dot operands (MMA inputs)
// ----------------------------------------------------------------------

LinearLayout
DotOperandEncoding::instructionTile() const
{
    llUserCheck(bitwidth == 8 || bitwidth == 16 || bitwidth == 32,
                "unsupported dot operand bitwidth " << bitwidth);
    int32_t packed = 32 / bitwidth; // elements per 32-bit register word
    LinearLayout tile = LinearLayout::empty();
    if (opIdx == 0) {
        // A operand, shape [M, K] (dim0 = M, dim1 = K). Appendix 9.1:
        // id_{log2(32/b)}^{Reg,1} x id_2^{Thr,1} x id_3^{Thr,0} x
        // id_1^{Reg,0} x id_1^{Reg,1}
        tile = distributedSeed(dims::out(1)) *
               LinearLayout::identity1D(packed, kReg, dims::out(1)) *
               LinearLayout::identity1D(4, kLane, dims::out(1)) *
               LinearLayout::identity1D(8, kLane, dims::out(0)) *
               LinearLayout::identity1D(2, kReg, dims::out(0)) *
               LinearLayout::identity1D(2, kReg, dims::out(1));
        if (parent.version == 3) {
            tile = tile * LinearLayout::identity1D(4, kWarp, dims::out(0));
        }
    } else {
        // B operand, shape [K, N] (dim0 = K, dim1 = N): the transpose of
        // the A tile with half the registers per thread.
        tile = distributedSeed(dims::out(0)) *
               LinearLayout::identity1D(packed, kReg, dims::out(0)) *
               LinearLayout::identity1D(4, kLane, dims::out(0)) *
               LinearLayout::identity1D(8, kLane, dims::out(1)) *
               LinearLayout::identity1D(2, kReg, dims::out(0));
    }
    return tile;
}

LinearLayout
DotOperandEncoding::toLinearLayout(const Shape &shape) const
{
    llUserCheck(shape.size() == 2, "dot operand layouts are 2D");
    LinearLayout layout = clampToShape(instructionTile(), shape);
    Shape remaining = {shape[0] / layout.getOutDimSize(dims::out(0)),
                       shape[1] / layout.getOutDimSize(dims::out(1))};

    // Warps follow the parent MMA distribution on the outer dim and
    // broadcast over the inner (K) dim so every warp owns the full
    // reduction (Appendix 9.1).
    int32_t warpsDim0 = parent.version == 3
                            ? std::max(parent.warpsPerCta[0] / 4, 1)
                            : parent.warpsPerCta[0];
    if (opIdx == 0) {
        appendResource(layout, remaining, warpsDim0, kWarp, 0);
        layout = layout * LinearLayout::zeros1D(parent.warpsPerCta[1],
                                                kWarp, dims::out(1));
    } else {
        layout = layout * LinearLayout::zeros1D(warpsDim0, kWarp,
                                                dims::out(0));
        appendResource(layout, remaining, parent.warpsPerCta[1], kWarp, 1);
    }

    // Registers replicate over the remaining K and outer extents.
    int inner = opIdx == 0 ? 1 : 0;
    int outer = 1 - inner;
    appendResource(layout, remaining, remaining[inner], kReg, inner);
    appendResource(layout, remaining, remaining[outer], kReg, outer);
    return canonicalizeOuts(std::move(layout), shape, {1, 0});
}

// ----------------------------------------------------------------------
// Slice
// ----------------------------------------------------------------------

LinearLayout
sliceLayout(const LinearLayout &parent, int axis)
{
    const std::string victim = dims::out(axis);
    llUserCheck(parent.hasOutDim(victim),
                "sliceLayout: parent has no dim " << axis);

    // Project away the sliced dim, then renumber the remaining dims so
    // they stay densely named dim0..dim{r-2}.
    std::vector<std::string> keep;
    for (const auto &name : parent.getOutDimNames()) {
        if (name != victim)
            keep.push_back(name);
    }
    LinearLayout sliced = parent.sublayout(parent.getInDimNames(), keep);
    // Rename dimK -> dim(K-1) for K > axis, in increasing K order.
    int rank = parent.getNumOutDims();
    for (int k = axis + 1; k < rank; ++k)
        sliced = sliced.renameOutDim(dims::out(k), dims::out(k - 1));
    return sliced;
}

// ----------------------------------------------------------------------
// Shared memory layouts
// ----------------------------------------------------------------------

LinearLayout
unswizzledSharedLayout(const Shape &shape, const std::vector<int32_t> &order)
{
    llUserCheck(order.size() == shape.size(),
                "unswizzledSharedLayout: order rank mismatch");
    LinearLayout layout = LinearLayout::empty();
    for (int32_t d : order) {
        layout = layout * LinearLayout::identity1D(shape[d], kOffset,
                                                   dims::out(d));
    }
    if (layout.getNumInDims() == 0)
        layout = LinearLayout::identity1D(1, kOffset, dims::out(order[0]));
    return layout;
}

LinearLayout
mmaSwizzledSharedLayout(const Shape &shape, int32_t vec, int32_t perPhase,
                        int32_t maxPhase, const std::vector<int32_t> &order)
{
    llUserCheck(shape.size() == 2 && order.size() == 2,
                "mmaSwizzledSharedLayout is 2D");
    llUserCheck(isPowerOf2(uint64_t(vec)) && isPowerOf2(uint64_t(perPhase)) &&
                    isPowerOf2(uint64_t(maxPhase)),
                "swizzle parameters must be powers of two");
    const int fast = order[0], slow = order[1];
    const int n = log2Exact(static_cast<uint64_t>(shape[fast]));
    const int m = log2Exact(static_cast<uint64_t>(shape[slow]));

    // Inverse-swizzle matrix [[I_n, C], [0, I_m]] (Proposition 4.12):
    // offset low bits map straight onto the fast dim; offset high bits
    // pick the row and XOR the swizzle vector c_k into the fast dim.
    std::vector<std::vector<int32_t>> vecs;
    for (int k = 0; k < n; ++k)
        vecs.push_back({int32_t(1) << k, 0});
    for (int k = 0; k < m; ++k) {
        int64_t phase = ((int64_t(1) << k) / perPhase) % maxPhase;
        int32_t ck = static_cast<int32_t>(
            (static_cast<int64_t>(vec) * phase) % (int64_t(1) << n));
        vecs.push_back({ck, int32_t(1) << k});
    }
    LinearLayout::BasesT bases;
    bases.insert(kOffset, std::move(vecs));
    return LinearLayout(
        std::move(bases),
        {{dims::out(fast), shape[fast]}, {dims::out(slow), shape[slow]}},
        /*requireSurjective=*/true);
}

SwizzleParams
chooseMmaSwizzleParams(int elemBytes, int32_t rowElems)
{
    // Legacy-Triton-style parameters: 128-bit vectors, phases sized so a
    // 128-byte bank wavefront is fully permuted.
    SwizzleParams p;
    p.vec = std::max(16 / elemBytes, 1);
    p.perPhase = std::max<int32_t>(
        128 / (rowElems * static_cast<int32_t>(elemBytes)), 1);
    p.maxPhase = std::max<int32_t>(8 / p.perPhase, 1);
    return p;
}

// ----------------------------------------------------------------------
// Family membership (Definitions 4.10 and 4.14)
// ----------------------------------------------------------------------

bool
isDistributedLayout(const LinearLayout &layout)
{
    if (!layout.isSurjective())
        return false;
    std::vector<uint64_t> seen;
    for (const auto &inDim : layout.getInDimNames()) {
        for (uint64_t col : layout.flattenedBases(inDim)) {
            if (popcount(col) > 1)
                return false;
            if (col != 0 &&
                std::find(seen.begin(), seen.end(), col) != seen.end()) {
                return false;
            }
            if (col != 0)
                seen.push_back(col);
        }
    }
    return true;
}

bool
isMemoryLayout(const LinearLayout &layout)
{
    if (!layout.isSurjective() || !layout.isInjective())
        return false;
    for (const auto &inDim : layout.getInDimNames()) {
        for (uint64_t col : layout.flattenedBases(inDim)) {
            int pc = popcount(col);
            if (pc != 1 && pc != 2)
                return false;
        }
    }
    return true;
}

} // namespace triton
} // namespace ll
