/**
 * @file
 * Constructions of Triton's legacy layout families as linear layouts.
 *
 * Section 4.3 of the paper proves that every legacy Triton layout —
 * blocked, MMA (NVIDIA mma / wgmma, AMD mfma), MMA-input (dot operand),
 * sliced, and shared (unswizzled or mma-swizzled) — is a linear layout.
 * This module gives the constructive versions of those proofs: each
 * encoding is a small parameter struct with a toLinearLayout() method.
 *
 * Conventions:
 *  - A logical tensor shape is a vector of power-of-two sizes, indexed by
 *    logical dimension (dim0, dim1, ...).
 *  - Layouts returned here order their output dims *minor-to-major*: the
 *    first output dim is the fastest-moving one. For an encoding with an
 *    `order` vector, order[0] names the fastest logical dim.
 *  - Distributed layouts use input dims register/lane/warp; memory
 *    layouts use the single input dim offset.
 */

#ifndef LL_TRITON_ENCODINGS_H
#define LL_TRITON_ENCODINGS_H

#include <cstdint>
#include <vector>

#include "layout/dims.h"
#include "layout/linear_layout.h"

namespace ll {
namespace triton {

using Shape = std::vector<int32_t>;

/** Default minor-to-major order for a rank-r tensor: the *last* logical
 *  dim is fastest, as in row-major storage: [r-1, r-2, ..., 0]. */
std::vector<int32_t> rowMajorOrder(int rank);

/**
 * Blocked layout (Proposition 4.6): a hierarchical tiling where each
 * thread owns a sizePerThread block, threads tile a warp, and warps tile
 * the CTA; tiles replicate across the tensor through extra registers, and
 * resources exceeding the tensor broadcast (map to zero).
 */
struct BlockedEncoding
{
    Shape sizePerThread;
    Shape threadsPerWarp;
    Shape warpsPerCta;
    /** order[0] is the fastest logical dimension. */
    std::vector<int32_t> order;

    LinearLayout toLinearLayout(const Shape &shape) const;

    /**
     * The layout Triton assigns to plain loads/stores: vectorized along
     * the fastest dim, threads filling the fastest dims first, warps the
     * slowest.
     */
    static BlockedEncoding makeDefault(const Shape &shape, int numWarps,
                                       int warpSize, int vecWidth = 1);

    /**
     * makeDefault with an explicit minor-to-major order instead of the
     * row-major default. The cute admission pass uses this to align
     * each side's anchor with its storage contiguity (dims sorted by
     * stride, fastest first), so bridged conversions vectorize along
     * the axis that is actually contiguous in memory.
     */
    static BlockedEncoding makeDefaultWithOrder(
        const Shape &shape, const std::vector<int32_t> &order,
        int numWarps, int warpSize, int vecWidth = 1);
};

/**
 * NVIDIA tensor-core output layouts (Proposition 4.7). version 2 is the
 * Ampere-style mma.m16n8 fragment; version 3 is the Hopper wgmma
 * m64nN fragment, where the four warps of a warp group jointly own 64
 * rows and instrN gives the instruction's N extent.
 */
struct MmaEncoding
{
    int version = 2;
    Shape warpsPerCta; // {warps along dim0, warps along dim1}
    int32_t instrN = 8;

    LinearLayout toLinearLayout(const Shape &shape) const;

    /** The single-warp (or warp-group) instruction tile. */
    LinearLayout instructionTile() const;
};

/**
 * AMD matrix-core (mfma) output layout: the 32x32 accumulator fragment
 * over a 64-lane wavefront.
 */
struct MfmaEncoding
{
    Shape warpsPerCta;

    LinearLayout toLinearLayout(const Shape &shape) const;

    LinearLayout instructionTile() const;
};

/**
 * MMA input (dot operand) layouts: the A (opIdx 0) and B (opIdx 1)
 * fragments of mma/wgmma, parameterized by element bit width per the
 * constructions in Appendix 9.1 of the paper.
 */
struct DotOperandEncoding
{
    MmaEncoding parent;
    int opIdx = 0;     // 0 = lhs (A), 1 = rhs (B)
    int bitwidth = 16; // element width in bits

    LinearLayout toLinearLayout(const Shape &shape) const;

    LinearLayout instructionTile() const;
};

/**
 * Sliced layout (Proposition 4.8): remove logical dimension `axis` from a
 * parent distributed layout. Remaining dims are renumbered densely. The
 * result may be non-injective but stays surjective.
 */
LinearLayout sliceLayout(const LinearLayout &parent, int axis);

/**
 * Unswizzled shared-memory layout: offset maps row-major (fastest logical
 * dim contiguous) onto the tensor, per the given order.
 */
LinearLayout unswizzledSharedLayout(const Shape &shape,
                                    const std::vector<int32_t> &order);

/**
 * MMA-swizzled shared layout (Definition 4.11 / Proposition 4.12) for a
 * 2D tensor. Parameters vec, perPhase, maxPhase are powers of two. The
 * returned layout maps offset -> (fastest dim, slower dim) with the
 * inverse-swizzle matrix [[I_n, C], [0, I_m]].
 */
LinearLayout mmaSwizzledSharedLayout(const Shape &shape, int32_t vec,
                                     int32_t perPhase, int32_t maxPhase,
                                     const std::vector<int32_t> &order);

/** Swizzle parameters chosen like legacy Triton does for MMA operands. */
struct SwizzleParams
{
    int32_t vec;
    int32_t perPhase;
    int32_t maxPhase;
};
SwizzleParams chooseMmaSwizzleParams(int elemBytes, int32_t rowElems);

/**
 * Definition 4.10: a distributed layout is a surjective linear layout
 * whose matrix columns each have at most one set bit, with no repeated
 * nonzero columns.
 */
bool isDistributedLayout(const LinearLayout &layout);

/**
 * Definition 4.14: a memory layout is an invertible linear layout whose
 * matrix columns have one or two set bits.
 */
bool isMemoryLayout(const LinearLayout &layout);

} // namespace triton
} // namespace ll

#endif // LL_TRITON_ENCODINGS_H
