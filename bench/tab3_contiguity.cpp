/**
 * @file
 * Table 3: load/store instruction selection — legacy fastest-dim
 * heuristic vs linear-layout cross-dimension contiguity analysis, for
 * [512, k] tensors of f8 and f16, plus the modeled global-memory sector
 * traffic each choice produces.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "codegen/vectorize.h"
#include "legacy/legacy.h"
#include "legacy/legacy_cost.h"
#include "sim/memory_sim.h"

namespace {

using namespace ll;

triton::BlockedEncoding
kernelEncoding(int32_t k, int elemBytes)
{
    triton::BlockedEncoding enc;
    if (k == 1) {
        enc.sizePerThread = {4, 1};
    } else {
        enc.sizePerThread = {std::max(1, 16 / (k * elemBytes)), k};
    }
    enc.threadsPerWarp = {32, 1};
    enc.warpsPerCta = {4, 1};
    enc.order = {1, 0};
    return enc;
}

void
printTable()
{
    bench::printHeader(
        "Table 3: load/store instructions and bitwidths, legacy Triton "
        "vs Triton-Linear");
    std::printf("%-18s %-10s %-10s %8s %8s %10s\n", "Tensor x Type",
                "Triton", "T-Linear", "bits", "bits", "gain");
    for (int elemBits : {8, 16}) {
        for (int32_t k : {1, 2, 4, 8, 16}) {
            auto enc = kernelEncoding(k, elemBits / 8);
            triton::Shape shape = {512, k};
            auto legacyInst =
                legacy::legacyMemoryInstruction(enc, shape, elemBits);
            auto layout = enc.toLinearLayout(shape);
            auto linearInst =
                codegen::selectMemoryInstruction(layout, elemBits);
            double gain = 100.0 *
                          (linearInst.totalBits() -
                           legacyInst.totalBits()) /
                          legacyInst.totalBits();
            std::printf("[512,%2d] x f%-6d %-10s %-10s %8d %8d %9.0f%%\n",
                        k, elemBits, legacyInst.toString().c_str(),
                        linearInst.toString().c_str(),
                        legacyInst.totalBits(), linearInst.totalBits(),
                        gain);
        }
    }

    // Sector traffic: same layout, different instruction widths.
    bench::printHeader("Modeled 32B global sectors per CTA load");
    auto spec = sim::GpuSpec::gh200();
    std::printf("%-18s %10s %10s\n", "Tensor x Type", "Triton",
                "T-Linear");
    for (int elemBits : {8, 16}) {
        for (int32_t k : {2, 8}) {
            auto enc = kernelEncoding(k, elemBits / 8);
            triton::Shape shape = {512, k};
            auto layout = enc.toLinearLayout(shape);
            // Linear: instructions sized by true contiguity. Legacy:
            // same data, narrower instructions -> more requests (but
            // sectors coalesce the same); report instruction counts.
            int legacyBits =
                legacy::legacyMemoryInstruction(enc, shape, elemBits)
                    .totalBits();
            int linearBits =
                codegen::selectMemoryInstruction(layout, elemBits)
                    .totalBits();
            int64_t elems = int64_t(shape[0]) * shape[1];
            int64_t legacyInsts = elems * elemBits / legacyBits;
            int64_t linearInsts = elems * elemBits / linearBits;
            std::printf("[512,%2d] x f%-6d %10lld %10lld   "
                        "(load instructions issued)\n",
                        k, elemBits,
                        static_cast<long long>(legacyInsts),
                        static_cast<long long>(linearInsts));
            (void)spec;
        }
    }
}

void
BM_ContiguityAnalysis(benchmark::State &state)
{
    int32_t k = static_cast<int32_t>(state.range(0));
    auto enc = kernelEncoding(k, 1);
    auto layout = enc.toLinearLayout({512, k});
    for (auto _ : state) {
        auto inst = codegen::selectMemoryInstruction(layout, 8);
        benchmark::DoNotOptimize(inst);
    }
}

BENCHMARK(BM_ContiguityAnalysis)->Arg(1)->Arg(4)->Arg(16);

} // namespace

int
main(int argc, char **argv)
{
    ll::bench::emitBenchJson("tab3_contiguity", [] { printTable(); });
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
