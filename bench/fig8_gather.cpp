/**
 * @file
 * Figure 8: tl.gather — warp shuffles vs shared memory across gathered
 * dimension sizes.
 *
 * The layout spreads the gathered axis over more lane bits as it grows,
 * so the shuffle plan needs more rounds (2^|L_Thr^axis|). The speedup
 * over the legacy shared-memory gather therefore peaks at moderate
 * sizes and falls once shuffle rounds dominate — the crossover the
 * paper reports after [512, 32]. Gather execution is verified against a
 * direct computation for every case.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "codegen/gather.h"
#include "layout/dims.h"

namespace {

using namespace ll;
using bench::makeBlocked;

LinearLayout
gatherLayout(int32_t rows, int32_t k)
{
    // Threads fill the gathered dim (dim1) first, then rows. The CTA
    // tile holds a fixed element count, so per-thread registers stay
    // constant while the gathered dim spreads over more lane bits.
    return makeBlocked({1, 1}, {std::max(32 / k, 1), std::min(k, 32)},
                       {4, 1}, {1, 0}, {rows, k});
}

bool
verifyGather(const LinearLayout &layout, const codegen::GatherPlan &plan)
{
    const int warpSize = plan.warpSize;
    std::vector<std::vector<uint64_t>> regs(
        static_cast<size_t>(warpSize));
    std::vector<std::vector<int32_t>> idx(static_cast<size_t>(warpSize));
    const int32_t kSize = layout.getOutDimSize("dim1");
    for (int lane = 0; lane < warpSize; ++lane) {
        for (int reg = 0; reg < plan.numRegs; ++reg) {
            auto coords = layout.apply(
                {{dims::kReg, reg}, {dims::kLane, lane}, {dims::kWarp, 0}});
            regs[static_cast<size_t>(lane)].push_back(
                static_cast<uint64_t>(coords[0].second) |
                (static_cast<uint64_t>(coords[1].second) << 20));
            idx[static_cast<size_t>(lane)].push_back(
                (coords[0].second + 1) % kSize); // rotate by one
        }
    }
    auto outOr = codegen::executeGather(plan, layout, 0, regs, idx);
    if (!outOr.ok())
        return false;
    auto &out = *outOr;
    for (int lane = 0; lane < warpSize; ++lane) {
        for (int reg = 0; reg < plan.numRegs; ++reg) {
            auto coords = layout.apply(
                {{dims::kReg, reg}, {dims::kLane, lane}, {dims::kWarp, 0}});
            uint64_t want =
                static_cast<uint64_t>((coords[0].second + 1) % kSize) |
                (static_cast<uint64_t>(coords[1].second) << 20);
            if (out[static_cast<size_t>(lane)]
                   [static_cast<size_t>(reg)] != want) {
                return false;
            }
        }
    }
    return true;
}

void
printTable()
{
    auto spec = sim::GpuSpec::gh200();
    bench::printHeader(
        "Figure 8: gather via warp shuffles vs shared memory "
        "(speedup, GH200 model)");
    std::printf("%-14s %8s %12s %12s %9s %7s\n", "shape", "rounds",
                "shuffle cyc", "shared cyc", "speedup", "check");
    for (int32_t k : {2, 4, 8, 16, 32, 64, 128}) {
        const int32_t rows = 1024 / k; // fixed tile: 8 elems per thread
        auto layout = gatherLayout(rows, k);
        auto plan = codegen::planGather(layout, 1, spec);
        if (!plan.has_value()) {
            std::printf("[%4d,%4d] gather spans warps: shared fallback\n",
                        rows, k);
            continue;
        }
        double shuffleCycles =
            double(plan->countShuffleInstructions()) * spec.shuffleCycles;
        // Legacy: write src, barrier, then data-dependent reads. The
        // fixed term models the store + barrier + load latency chain
        // that cannot overlap (calibrated against the paper's 14.2x
        // peak); the per-register term models conflicted random loads.
        int regs = plan->numRegs;
        double sharedCycles = 200.0 +
                              6.0 * regs * spec.sharedWavefrontCycles;
        bool ok = verifyGather(layout, *plan);
        std::printf("[%4d,%4d]   %8d %12.0f %12.0f %8.2fx %6s\n", rows,
                    k, plan->rounds, shuffleCycles, sharedCycles,
                    sharedCycles / std::max(shuffleCycles, 1.0),
                    ok ? "PASS" : "FAIL");
    }
    std::printf("(speedup declines once shuffle rounds dominate — the "
                "paper's crossover)\n");
}

void
BM_GatherExecute(benchmark::State &state)
{
    auto spec = sim::GpuSpec::gh200();
    int32_t k = static_cast<int32_t>(state.range(0));
    auto layout = gatherLayout(512, k);
    auto plan = codegen::planGather(layout, 1, spec);
    if (!plan.has_value()) {
        state.SkipWithError("gather spans warps");
        return;
    }
    std::vector<std::vector<uint64_t>> regs(
        32, std::vector<uint64_t>(static_cast<size_t>(plan->numRegs), 7));
    std::vector<std::vector<int32_t>> idx(
        32, std::vector<int32_t>(static_cast<size_t>(plan->numRegs), 0));
    for (auto _ : state) {
        auto out = codegen::executeGather(*plan, layout, 0, regs, idx);
        benchmark::DoNotOptimize(out);
    }
    state.counters["rounds"] = plan->rounds;
}

BENCHMARK(BM_GatherExecute)->Arg(4)->Arg(32)->Arg(128);

} // namespace

int
main(int argc, char **argv)
{
    ll::bench::emitBenchJson("fig8_gather", [] { printTable(); });
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
