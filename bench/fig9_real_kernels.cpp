/**
 * @file
 * Figure 9: real-kernel speedups of Triton-Linear over legacy Triton on
 * the RTX4090, GH200, and MI250 models.
 *
 * Every kernel from the TritonBench-style suite is laid out by the
 * linear-layout engine, then priced twice: once with the linear-layout
 * lowerings (no-op detection, register permutes, warp shuffles, optimal
 * swizzles, ldmatrix/stmatrix where the platform has them) and once
 * under the legacy rules (every conversion through padded shared
 * memory, fastest-dim vectorization, duplicate stores). As in the
 * paper, TMA-dependent kernels only run on GH200 and large-shared
 * kernels skip the consumer GPU.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "engine/cost_model.h"
#include "engine/layout_engine.h"
#include "kernels.h"
#include "legacy/legacy_cost.h"
#include "service/plan_cache.h"

namespace {

using namespace ll;

struct Result
{
    double minSpeedup = 1e9, maxSpeedup = 0, geo = 0;
    int cases = 0;
};

bool
kernelRunsOn(const kernels::KernelSpec &k, const sim::GpuSpec &spec)
{
    if (k.needsTma && !spec.hasTma)
        return false;
    if (k.needsLargeShared && spec.sharedMemPerCta < 128 * 1024)
        return false;
    return true;
}

/**
 * LL_FIG9_KERNELS: comma-separated kernel-name subset for the table
 * and plan-cache passes. Empty/unset runs the full suite. The
 * fig9_speedup_smoke guard uses this to compare the word-parallel and
 * scalar-reference paths on a representative subset instead of the
 * whole (expensive, on the reference path) suite.
 */
bool
kernelSelected(const kernels::KernelSpec &k)
{
    const char *env = std::getenv("LL_FIG9_KERNELS");
    if (env == nullptr || *env == '\0')
        return true;
    const std::string list(env);
    size_t pos = 0;
    while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos)
            comma = list.size();
        if (list.compare(pos, comma - pos, k.name) == 0)
            return true;
        pos = comma + 1;
    }
    return false;
}

void
printTable()
{
    const sim::GpuSpec specs[] = {sim::GpuSpec::rtx4090(),
                                  sim::GpuSpec::gh200(),
                                  sim::GpuSpec::mi250()};
    bench::printHeader(
        "Figure 9: Triton-Linear speedup over legacy Triton, "
        "per kernel and platform (modeled)");
    auto suite = kernels::allKernels();
    std::printf("%-20s", "kernel");
    for (const auto &spec : specs)
        std::printf(" %14s", spec.name.c_str());
    std::printf("   (min..max over inputs)\n");

    std::vector<double> platformGeo(3, 0.0);
    std::vector<int> platformCases(3, 0);
    for (const auto &k : suite) {
        if (!kernelSelected(k))
            continue;
        std::printf("%-20s", k.name.c_str());
        for (size_t p = 0; p < 3; ++p) {
            const auto &spec = specs[p];
            if (!kernelRunsOn(k, spec)) {
                std::printf(" %14s", "n/a");
                continue;
            }
            Result r;
            for (int32_t size : k.sizes) {
                ir::Function f = k.build(size);
                engine::LayoutEngine eng({spec, 4});
                eng.run(f);
                auto lin = engine::estimateKernelCost(f, spec, 4);
                auto leg = legacy::estimateLegacyKernelCost(f, spec, 4);
                double speedup = leg.cycles / std::max(lin.cycles, 1.0);
                r.minSpeedup = std::min(r.minSpeedup, speedup);
                r.maxSpeedup = std::max(r.maxSpeedup, speedup);
                r.geo += std::log(speedup);
                ++r.cases;
                platformGeo[p] += std::log(speedup);
                ++platformCases[p];
            }
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.2f..%.2f", r.minSpeedup,
                          r.maxSpeedup);
            std::printf(" %14s", buf);
        }
        std::printf("\n");
    }
    std::printf("%-20s", "geomean");
    for (size_t p = 0; p < 3; ++p) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.3fx",
                      std::exp(platformGeo[p] / platformCases[p]));
        std::printf(" %14s", buf);
    }
    std::printf("   over %d+%d+%d cases\n", platformCases[0],
                platformCases[1], platformCases[2]);
}

/**
 * Plan-cache amortization over the suite: a second engine pass against
 * a shared service::PlanCache serves the conversions the first pass
 * planned, which is the compilation-service deployment story (llserve
 * measures the same effect under a thread pool).
 */
void
printPlanCacheAmortization()
{
    bench::printHeader(
        "Plan-cache amortization: two engine passes over the suite "
        "(GH200, shared service::PlanCache)");
    service::PlanCache cache;
    engine::EngineOptions options;
    options.planCache = &cache;
    engine::EngineStats pass1, pass2;
    for (int pass = 0; pass < 2; ++pass) {
        engine::EngineStats &total = pass == 0 ? pass1 : pass2;
        for (const auto &k : kernels::allKernels()) {
            if (!kernelSelected(k))
                continue;
            for (int32_t size : k.sizes) {
                ir::Function f = k.build(size);
                engine::LayoutEngine eng{options};
                auto stats = eng.run(f);
                total.convertsPlanned += stats.convertsPlanned;
                total.planCacheHits += stats.planCacheHits;
                total.planCacheMisses += stats.planCacheMisses;
                total.smokeCacheHits += stats.smokeCacheHits;
            }
        }
    }
    std::printf("%-8s %10s %10s %10s %12s\n", "pass", "planned",
                "cache-hit", "cache-miss", "smoke-hit");
    std::printf("%-8s %10d %10d %10d %12d\n", "cold",
                pass1.convertsPlanned, pass1.planCacheHits,
                pass1.planCacheMisses, pass1.smokeCacheHits);
    std::printf("%-8s %10d %10d %10d %12d\n", "warm",
                pass2.convertsPlanned, pass2.planCacheHits,
                pass2.planCacheMisses, pass2.smokeCacheHits);
    const int looks = pass2.planCacheHits + pass2.planCacheMisses;
    std::printf("warm-pass hit rate: %.1f%% (%lld cached plan(s) "
                "resident)\n",
                looks > 0 ? 100.0 * pass2.planCacheHits / looks : 0.0,
                static_cast<long long>(cache.size()));
}

/**
 * LL_FIG9_SYNTH: set (to anything but "0") to also run the suite with
 * EngineOptions::synthesizeLayouts on and report it against the
 * synth-off baseline — the paper-style converts_eliminated / total
 * cycles measurement the ISSUE tracks against the 52/344 propagation
 * baseline. Off by default so the fig9_speedup_smoke timing guard is
 * unaffected; the fig9_synth_smoke ctest sets it and enforces the
 * emitted counters (strictly more conversions eliminated, never more
 * cycles on any kernel).
 */
bool
synthRequested()
{
    const char *env = std::getenv("LL_FIG9_SYNTH");
    return env != nullptr && *env != '\0' &&
           std::string(env) != "0";
}

void
printSynthComparison()
{
    const sim::GpuSpec specs[] = {sim::GpuSpec::rtx4090(),
                                  sim::GpuSpec::gh200(),
                                  sim::GpuSpec::mi250()};
    bench::printHeader(
        "Layout synthesis vs default propagation: conversions "
        "eliminated and modeled cycles (all platforms)");
    std::printf("%-20s %-9s %12s %12s %14s %14s\n", "kernel", "spec",
                "elim(off)", "elim(on)", "cycles(off)", "cycles(on)");

    long long offElim = 0, onElim = 0, synthElim = 0, offInserted = 0;
    double offCycles = 0.0, onCycles = 0.0;
    int kernelsWorse = 0;
    for (const auto &spec : specs) {
        // One shared cache per platform across both passes: plans are
        // pure functions of (src, dst, bytes, spec), and sharing also
        // exercises the plan-cache-backed edge pricing inside the
        // search.
        service::PlanCache cache;
        for (const auto &k : kernels::allKernels()) {
            if (!kernelSelected(k) || !kernelRunsOn(k, spec))
                continue;
            int kOffElim = 0, kOnElim = 0;
            double kOffCycles = 0.0, kOnCycles = 0.0;
            for (int32_t size : k.sizes) {
                engine::EngineOptions off;
                off.spec = spec;
                off.planCache = &cache;
                engine::EngineOptions on = off;
                on.synthesizeLayouts = true;

                ir::Function fOff = k.build(size);
                auto sOff = engine::LayoutEngine{off}.run(fOff);
                auto cOff = engine::estimateKernelCost(fOff, spec, 4);
                ir::Function fOn = k.build(size);
                auto sOn = engine::LayoutEngine{on}.run(fOn);
                auto cOn = engine::estimateKernelCost(fOn, spec, 4);

                kOffElim += sOff.convertsEliminated;
                kOnElim += sOn.convertsEliminated;
                synthElim += sOn.synthConvertsEliminated;
                offInserted += sOff.convertsInserted;
                kOffCycles += cOff.cycles;
                kOnCycles += cOn.cycles;
            }
            offElim += kOffElim;
            onElim += kOnElim;
            offCycles += kOffCycles;
            onCycles += kOnCycles;
            const bool worse = kOnCycles > kOffCycles + 1e-6;
            kernelsWorse += worse;
            std::printf("%-20s %-9s %12d %12d %14.0f %14.0f%s\n",
                        k.name.c_str(), spec.name.c_str(), kOffElim,
                        kOnElim, kOffCycles, kOnCycles,
                        worse ? "  WORSE" : "");
        }
    }
    std::printf("total: eliminated %lld/%lld -> %lld/%lld "
                "(+%lld from synthesis), cycles %.0f -> %.0f, "
                "%d kernel(s) worse\n",
                offElim, offInserted, onElim, offInserted, synthElim,
                offCycles, onCycles, kernelsWorse);

    // The machine-readable contract: fig9_synth_smoke and llprof
    // --gate read these out of BENCH_fig9_real_kernels.json. The
    // eliminated partition (propagation + synthesis) must sum — llstat
    // --validate-bench-json checks it.
    metrics::counter("synth.fig9.baseline_converts_eliminated")
        .add(offElim);
    metrics::counter("synth.fig9.converts_eliminated").add(onElim);
    metrics::counter("synth.fig9.propagation_eliminated")
        .add(onElim - synthElim);
    metrics::counter("synth.fig9.synth_eliminated").add(synthElim);
    metrics::counter("synth.fig9.baseline_cycles")
        .add(static_cast<int64_t>(std::llround(offCycles)));
    metrics::counter("synth.fig9.cycles")
        .add(static_cast<int64_t>(std::llround(onCycles)));
    metrics::counter("synth.fig9.kernels_worse").add(kernelsWorse);
}

void
BM_EngineOnKernel(benchmark::State &state)
{
    auto suite = kernels::allKernels();
    const auto &k = suite[static_cast<size_t>(state.range(0))];
    auto spec = sim::GpuSpec::gh200();
    for (auto _ : state) {
        ir::Function f = k.build(k.sizes[0]);
        engine::LayoutEngine eng({spec, 4});
        auto stats = eng.run(f);
        benchmark::DoNotOptimize(stats);
    }
    state.SetLabel(k.name);
}

BENCHMARK(BM_EngineOnKernel)->Arg(0)->Arg(5)->Arg(8);

} // namespace

int
main(int argc, char **argv)
{
    ll::bench::emitBenchJson("fig9_real_kernels", [] {
        printTable();
        printPlanCacheAmortization();
        if (synthRequested())
            printSynthComparison();
    });
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
