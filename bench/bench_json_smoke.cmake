# Smoke-run every figure binary (google-benchmark cases filtered out,
# 1 rep) into a scratch dir, then validate the BENCH_*.json reports
# each one must emit against the schema llstat enforces.
#
# Script arguments (via -D):
#   BENCH_DIR   directory holding the bench binaries
#   BENCH_NAMES comma-separated binary names
#   LLSTAT      path to the llstat binary
#   OUT_DIR     scratch dir for the emitted reports

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

string(REPLACE "," ";" _names "${BENCH_NAMES}")
foreach(name IN LISTS _names)
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E env
                LL_BENCH_REPS=1 "LL_BENCH_JSON_DIR=${OUT_DIR}"
                "${BENCH_DIR}/${name}" --benchmark_filter=__nobench__
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR "${name} exited with ${rc}")
    endif()
    # Binaries named bench_<x> report as BENCH_<x>.json.
    string(REGEX REPLACE "^bench_" "" _json "${name}")
    if(NOT EXISTS "${OUT_DIR}/BENCH_${_json}.json")
        message(FATAL_ERROR "${name} did not emit BENCH_${_json}.json")
    endif()
endforeach()

execute_process(COMMAND "${LLSTAT}" --validate-bench-json "${OUT_DIR}"
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "BENCH_*.json schema validation failed")
endif()
