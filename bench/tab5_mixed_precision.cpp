/**
 * @file
 * Table 5: mixed-precision matmul pass rates per dtype pair.
 *
 * For every dtype pair the paper sweeps, we enumerate the same number of
 * shape variants. The Triton-Linear column is *computed*: the layout
 * engine lays out a dot kernel, and every inserted conversion to an MMA
 * input layout is executed on the shared-memory simulator and verified
 * element by element. The legacy column replays the published pass
 * counts (the legacy implementation's failures cannot be re-derived
 * without running it; see DESIGN.md).
 */

#include <benchmark/benchmark.h>

#include <array>

#include "bench_util.h"
#include "codegen/conversion.h"
#include "codegen/shared_exec.h"
#include "engine/layout_engine.h"
#include "legacy/legacy.h"

namespace {

using namespace ll;
using ir::DType;

const std::vector<std::array<int32_t, 3>> kBaseShapes = {
    {16, 16, 32},   {32, 32, 32},  {16, 8, 32},   {64, 64, 64},
    {32, 16, 128},  {8, 8, 32},    {128, 128, 64}, {16, 16, 64},
    {64, 32, 32},   {32, 64, 64},  {16, 32, 32},  {64, 16, 64},
};

/** Run one dot case end to end under Triton-Linear; returns pass. */
bool
runLinearCase(DType a, DType b, const std::array<int32_t, 3> &shape,
              const sim::GpuSpec &spec)
{
    try {
        ir::Function f("dot");
        int va = f.load({a, {shape[0], shape[2]}});
        int vb = f.load({b, {shape[2], shape[1]}});
        int acc = f.dot(va, vb, DType::F32);
        f.store(acc);
        engine::LayoutEngine eng({spec, 4});
        eng.run(f);

        // Verify every shared-memory conversion the engine created.
        for (int i = 0; i < f.numOps(); ++i) {
            const ir::Op &o = f.op(i);
            if (o.erased || o.kind != ir::OpKind::ConvertLayout)
                continue;
            const auto &src = f.value(o.operands[0]);
            const auto &dst = f.value(o.results[0]);
            int elemBytes = byteWidth(src.type.dtype);
            auto plan = codegen::planConversion(*src.layout, *dst.layout,
                                                elemBytes, spec);
            if (plan.kind == codegen::ConversionKind::SharedMemory) {
                auto res = codegen::executeSharedConversion(
                    *plan.shared, *src.layout, *dst.layout, elemBytes,
                    spec);
                if (!res.ok() || !res->correct)
                    return false;
            }
        }
        return true;
    } catch (const std::exception &) {
        return false;
    }
}

void
printTable()
{
    auto spec = sim::GpuSpec::gh200();
    bench::printHeader(
        "Table 5: mixed-precision matmul pass rates (legacy replayed "
        "from paper; linear verified on simulator)");
    std::printf("%-12s %12s %14s\n", "Data Type", "Triton",
                "Triton-Linear");

    const std::pair<DType, DType> pairs[] = {
        {DType::I16, DType::F16}, {DType::I16, DType::F32},
        {DType::I16, DType::F64}, {DType::I16, DType::F8},
        {DType::I32, DType::F16}, {DType::I32, DType::F64},
        {DType::I32, DType::F8},  {DType::I64, DType::F16},
        {DType::I64, DType::F32}, {DType::I64, DType::F8},
        {DType::I8, DType::F16},  {DType::I8, DType::F32},
        {DType::I8, DType::F64},  {DType::I8, DType::F8},
    };
    int linTotal = 0, linPass = 0, legTotal = 0, legPass = 0;
    for (auto [a, b] : pairs) {
        auto [lp, lt] = legacy::legacyDotPassCounts(a, b);
        int passed = 0;
        for (int i = 0; i < lt; ++i) {
            auto shape = kBaseShapes[static_cast<size_t>(i) %
                                     kBaseShapes.size()];
            if (runLinearCase(a, b, shape, spec))
                ++passed;
        }
        std::printf("%-4s/%-7s %6d/%-6d %7d/%-6d\n",
                    toString(a).c_str(), toString(b).c_str(), lp, lt,
                    passed, lt);
        linTotal += lt;
        linPass += passed;
        legTotal += lt;
        legPass += lp;
    }
    std::printf("overall: legacy %.1f%%, linear %.1f%% of %d cases\n",
                100.0 * legPass / legTotal, 100.0 * linPass / linTotal,
                linTotal);
}

void
BM_MixedPrecisionLayoutEngine(benchmark::State &state)
{
    auto spec = sim::GpuSpec::gh200();
    for (auto _ : state) {
        ir::Function f("dot");
        int va = f.load({DType::I8, {64, 64}});
        int vb = f.load({DType::F8, {64, 64}});
        int acc = f.dot(va, vb, DType::F32);
        f.store(acc);
        engine::LayoutEngine eng({spec, 4});
        auto stats = eng.run(f);
        benchmark::DoNotOptimize(stats);
    }
}

BENCHMARK(BM_MixedPrecisionLayoutEngine);

} // namespace

int
main(int argc, char **argv)
{
    ll::bench::emitBenchJson("tab5_mixed_precision", [] { printTable(); });
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
