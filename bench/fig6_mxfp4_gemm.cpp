/**
 * @file
 * Figure 6: MXFP4 mixed-precision matmul — Triton-Linear's data
 * shuffling optimization (Section 5.2) vs legacy Triton, on the GH200
 * model.
 *
 * One operand is mxfp4 (4-bit, 32 elements per 8-bit scale); the other
 * sweeps f8 / bf16 / f16. Without linear layouts, the wgmma register
 * constraint limits mxfp4 loads to 16-bit instructions and the scales
 * are distributed by warp shuffles; with linear layouts the
 * higher-precision operand is pre-shuffled in HBM so the mxfp4 operand
 * loads with 128-bit instructions, the engine derives the scale layout
 * for free, and the f16 case additionally gets the wgmma path the
 * legacy backend missed (the paper's 1.87x series).
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "ir/types.h"

namespace {

using namespace ll;
using ir::DType;

struct Cost
{
    double loadA, scales, loadB, dot, epilogue;

    double
    total() const
    {
        return loadA + scales + loadB + dot + epilogue;
    }
};

/** Per-CTA-tile cost of one mxfp4 x other GEMM. */
Cost
tileCost(DType other, int32_t kTotal, bool linear,
         const sim::GpuSpec &spec)
{
    const int32_t m = 128, n = 128;
    const int threads = 4 * spec.warpSize;
    const double issueCyclesPerInst = 2.0; // LSU + shared staging

    Cost c{};
    // --- mxfp4 operand A: [m, kTotal] at 4 bits -----------------------
    double aBytes = double(m) * kTotal / 2.0;
    int loadWidthBits = linear ? 128 : 16; // the data-shuffling win
    double aInsts = aBytes * 8.0 / loadWidthBits / threads;
    // Without the pre-shuffle, the wgmma-imposed register pattern makes
    // the 16-bit accesses strided, halving achieved coalescing.
    double coalescing = linear ? 1.0 : 2.0;
    c.loadA = aInsts * issueCyclesPerInst +
              coalescing * aBytes / 32.0 * spec.globalSectorCycles;

    // --- scales: one e8m0 per 32 elements ------------------------------
    double numScales = double(m) * kTotal / 32.0;
    double scaleBytes = numScales;
    c.scales = scaleBytes / 32.0 * spec.globalSectorCycles;
    if (!linear) {
        // Blocked load + warp-shuffle redistribution (8 rounds per
        // scale group shared by a row of the mma layout).
        c.scales += numScales / threads * 8.0 * spec.shuffleCycles;
    }

    // --- other operand B ------------------------------------------------
    double bBytes = double(n) * kTotal * byteWidth(other);
    c.loadB = bBytes * 8.0 / 128.0 / threads * issueCyclesPerInst +
              bBytes / 32.0 * spec.globalSectorCycles;

    // --- tensor cores ----------------------------------------------------
    double macs = double(m) * n * kTotal;
    double macsPerCycle = 4.0 * spec.mmaMacsPerCyclePerWarp;
    if (!linear && other == DType::F16) {
        // Legacy missed wgmma for f16 mixed precision: mma at half
        // throughput (the issue fixed by Triton-Linear).
        macsPerCycle /= 2.0;
    }
    c.dot = macs / macsPerCycle;

    // --- upcast + store --------------------------------------------------
    c.epilogue = double(m) * kTotal / threads / 2.0 +
                 double(m) * n * 2.0 / 32.0 * spec.globalSectorCycles;
    return c;
}

void
printTable()
{
    auto spec = sim::GpuSpec::gh200();
    bench::printHeader(
        "Figure 6: MXFP4 matmul speedups from data shuffling "
        "(Triton-Linear vs Triton, GH200 model)");
    std::printf("%-10s %10s %12s %12s %9s\n", "dtype", "M=N=K",
                "linear cyc", "legacy cyc", "speedup");
    const std::pair<DType, const char *> dtypes[] = {
        {DType::F8, "mxfp4xf8"},
        {DType::BF16, "mxfp4xbf16"},
        {DType::F16, "mxfp4xf16"},
    };
    for (auto [dt, name] : dtypes) {
        for (int32_t size : {1024, 2048, 4096, 8192}) {
            Cost lin = tileCost(dt, size, true, spec);
            Cost leg = tileCost(dt, size, false, spec);
            std::printf("%-10s %10d %12.0f %12.0f %8.2fx\n", name, size,
                        lin.total(), leg.total(),
                        leg.total() / lin.total());
        }
    }
    std::printf("(f16 series adds the wgmma fix on top of wider mxfp4 "
                "loads)\n");
}

void
BM_Mxfp4CostModel(benchmark::State &state)
{
    auto spec = sim::GpuSpec::gh200();
    for (auto _ : state) {
        Cost lin = tileCost(DType::F16,
                            static_cast<int32_t>(state.range(0)), true,
                            spec);
        benchmark::DoNotOptimize(lin);
    }
    Cost lin = tileCost(DType::F16,
                        static_cast<int32_t>(state.range(0)), true, spec);
    Cost leg = tileCost(DType::F16,
                        static_cast<int32_t>(state.range(0)), false,
                        spec);
    state.counters["speedup"] = leg.total() / lin.total();
}

BENCHMARK(BM_Mxfp4CostModel)->Arg(2048)->Arg(8192);

} // namespace

int
main(int argc, char **argv)
{
    ll::bench::emitBenchJson("fig6_mxfp4_gemm", [] { printTable(); });
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
