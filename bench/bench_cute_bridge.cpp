/**
 * @file
 * The cute bridge and non-pow2 admission path, priced.
 *
 * The experiment table answers two questions. First, what does the
 * bridge itself cost: round-tripping a distributed pow2 layout through
 * fromLinear -> toLinear, per layout. Second, what does non-pow2
 * admission cost relative to the naive alternative of padding every
 * extent up to the next power of two and converting the padded tensor:
 * the decomposition moves exactly the logical elements (core through
 * the distributed planner, shell through scalar windows), while
 * padding moves and allocates the pow2 envelope — up to 2x-per-axis
 * more traffic.
 *
 * Timing cases cover bridge round trips, end-to-end non-pow2 planning,
 * and plan execution on element buffers.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "codegen/conversion.h"
#include "cute/admit.h"
#include "cute/bridge.h"
#include "triton/encodings.h"

namespace {

using namespace ll;

struct AdmitCase
{
    const char *name;
    const char *src;
    const char *dst;
    int elemBytes;
};

const AdmitCase kCases[] = {
    {"3x5x7 col->row", "(3,5,7):(1,3,15)", "(3,5,7):(35,7,1)", 2},
    {"25x4 row->col", "(25,4):(4,1)", "(25,4):(1,25)", 4},
    {"12x100 row->col", "(12,100):(100,1)", "(12,100):(1,12)", 1},
    {"50257 vocab copy", "(50257):(1)", "(50257):(1)", 2},
    {"32x64 pow2 ctrl", "(32,64):(64,1)", "(32,64):(1,32)", 2},
};

cute::CuteConversionRequest
makeRequest(const AdmitCase &c)
{
    cute::CuteConversionRequest req;
    req.src = cute::CuteLayout::parse(c.src);
    req.dst = cute::CuteLayout::parse(c.dst);
    req.elemBytes = c.elemBytes;
    return req;
}

int64_t
paddedElements(const cute::CutePlan &plan)
{
    int64_t padded = 1;
    for (int64_t e : plan.logicalShape) {
        int64_t p = 1;
        while (p < e)
            p <<= 1;
        padded *= p;
    }
    return padded;
}

void
printTable()
{
    auto spec = sim::GpuSpec::gh200();
    bench::printHeader(
        "Cute bridge: non-pow2 admission vs pow2 padding (GH200 "
        "model)");
    std::printf("%-18s %9s %9s %9s %8s %9s %9s %8s\n", "case",
                "logical", "core", "remaind", "windows", "padded",
                "overhead", "check");
    for (const AdmitCase &c : kCases) {
        auto req = makeRequest(c);
        auto plan = cute::tryPlanCuteConversion(req, spec);
        if (!plan.ok()) {
            std::printf("%-18s planning failed: %s\n", c.name,
                        plan.diag().message.c_str());
            continue;
        }
        int64_t logical = plan->coreElems + plan->remainderElems;
        int64_t padded = paddedElements(*plan);
        // Execute on tagged buffers and verify the relayout semantic
        // inline so the printed numbers are for a *correct* plan.
        std::vector<uint64_t> srcBuf(
            static_cast<size_t>(req.src.cosize()));
        for (size_t i = 0; i < srcBuf.size(); ++i)
            srcBuf[i] = i + 1;
        std::vector<uint64_t> dstBuf(
            static_cast<size_t>(req.dst.cosize()), 0);
        cute::CuteExecStats stats =
            cute::executeCutePlan(*plan, req, srcBuf, dstBuf);
        bool ok = stats.coreElems + stats.remainderElems == logical;
        for (int64_t i = 0; ok && i < logical; ++i)
            ok = dstBuf[static_cast<size_t>(req.dst(i))] ==
                 srcBuf[static_cast<size_t>(req.src(i))];
        std::printf("%-18s %9lld %9lld %9lld %8lld %9lld %8.2fx %7s\n",
                    c.name, static_cast<long long>(logical),
                    static_cast<long long>(plan->coreElems),
                    static_cast<long long>(plan->remainderElems),
                    static_cast<long long>(stats.windows),
                    static_cast<long long>(padded),
                    static_cast<double>(padded) /
                        static_cast<double>(logical),
                    ok ? "PASS" : "FAIL");
    }

    bench::printHeader("Bridge round trip on distributed layouts");
    std::printf("%-22s %12s %10s\n", "layout", "in-bits",
                "bit-ident");
    for (int32_t rows : {32, 64, 128}) {
        auto enc = triton::BlockedEncoding::makeDefault(
            {rows, 64}, 4, spec.warpSize, 4);
        LinearLayout lin = enc.toLinearLayout({rows, 64});
        auto back = cute::fromLinear(lin);
        bool ident = false;
        if (back.ok()) {
            std::vector<LinearLayout::DimSize> inDims;
            for (const std::string &d : lin.getInDimNames())
                inDims.emplace_back(d, lin.getInDimSize(d));
            auto again =
                cute::toLinear(*back, inDims, lin.getOutDims());
            ident = again.ok() && *again == lin;
        }
        std::printf("blocked[%4dx64]       %12d %10s\n", rows,
                    lin.getTotalInDimSize(), ident ? "PASS" : "FAIL");
    }
}

void
BM_BridgeRoundTrip(benchmark::State &state)
{
    auto spec = sim::GpuSpec::gh200();
    auto enc = triton::BlockedEncoding::makeDefault(
        {static_cast<int32_t>(state.range(0)), 64}, 4, spec.warpSize,
        4);
    LinearLayout lin = enc.toLinearLayout(
        {static_cast<int32_t>(state.range(0)), 64});
    std::vector<LinearLayout::DimSize> inDims;
    for (const std::string &d : lin.getInDimNames())
        inDims.emplace_back(d, lin.getInDimSize(d));
    for (auto _ : state) {
        auto back = cute::fromLinear(lin);
        auto again = cute::toLinear(*back, inDims, lin.getOutDims());
        benchmark::DoNotOptimize(again);
    }
}

void
BM_PlanNonPow2(benchmark::State &state)
{
    auto spec = sim::GpuSpec::gh200();
    auto req = makeRequest(kCases[static_cast<size_t>(state.range(0))]);
    for (auto _ : state) {
        auto plan = cute::tryPlanCuteConversion(req, spec);
        benchmark::DoNotOptimize(plan);
    }
}

void
BM_ExecuteNonPow2(benchmark::State &state)
{
    auto spec = sim::GpuSpec::gh200();
    auto req = makeRequest(kCases[static_cast<size_t>(state.range(0))]);
    auto plan = cute::tryPlanCuteConversion(req, spec);
    if (!plan.ok()) {
        state.SkipWithError("no plan");
        return;
    }
    std::vector<uint64_t> srcBuf(static_cast<size_t>(req.src.cosize()),
                                 1);
    std::vector<uint64_t> dstBuf(static_cast<size_t>(req.dst.cosize()),
                                 0);
    for (auto _ : state) {
        auto stats = cute::executeCutePlan(*plan, req, srcBuf, dstBuf);
        benchmark::DoNotOptimize(stats);
    }
}

BENCHMARK(BM_BridgeRoundTrip)->Arg(32)->Arg(128);
BENCHMARK(BM_PlanNonPow2)->Arg(0)->Arg(2)->Arg(3);
BENCHMARK(BM_ExecuteNonPow2)->Arg(0)->Arg(2);

} // namespace

int
main(int argc, char **argv)
{
    ll::bench::emitBenchJson("cute_bridge", [] { printTable(); });
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
