# Layout-synthesis guard over the full fig9 suite: run the benchmark
# with LL_FIG9_SYNTH=1 (synthesis on, compared in-process against the
# synth-off baseline on every kernel x platform) and enforce the
# ISSUE's acceptance contract on the emitted counters:
#
#   1. BENCH_fig9_real_kernels.json is schema-valid, including the
#      eliminated = propagation + synthesis partition
#      (llstat --validate-bench-json);
#   2. synth.fig9.converts_eliminated is strictly greater than 52 —
#      the propagation-only baseline the paper-style measurement
#      started from;
#   3. the never-worse guarantee held: synth.fig9.kernels_worse == 0
#      and synth.fig9.cycles <= synth.fig9.baseline_cycles;
#   4. llprof --gate understands the synth fields: self vs self passes,
#      and a copy with one fewer eliminated conversion fails.
#
# Script arguments (via -D):
#   FIG9     path to the fig9_real_kernels binary
#   LLSTAT   path to the llstat binary
#   LLPROF   path to the llprof binary
#   OUT_DIR  scratch dir for the emitted reports

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}/baseline")

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
            LL_FIG9_SYNTH=1 LL_BENCH_REPS=1
            "LL_BENCH_JSON_DIR=${OUT_DIR}/baseline"
            "${FIG9}" --benchmark_filter=__nobench__
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "fig9 (LL_FIG9_SYNTH=1) exited with ${rc}")
endif()
set(report_path "${OUT_DIR}/baseline/BENCH_fig9_real_kernels.json")
if(NOT EXISTS "${report_path}")
    message(FATAL_ERROR "run did not emit BENCH_fig9_real_kernels.json")
endif()

# 1. Schema + partition validation.
execute_process(
    COMMAND "${LLSTAT}" --validate-bench-json "${OUT_DIR}/baseline"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "llstat --validate-bench-json failed (rc ${rc})")
endif()

# emitBenchJson writes counter *deltas* and omits zero deltas, so a
# counter absent from the report is an exact 0. Callers that must see a
# nonzero value pass no default and fail on absence; kernels_worse is
# expected to be 0 (and therefore absent) on a healthy run.
file(READ "${report_path}" report)
function(read_counter name out_var)
    string(REGEX MATCH "\"${name}\": ([0-9]+)" matched "${report}")
    if(matched STREQUAL "")
        if(ARGC GREATER 2)
            set(${out_var} "${ARGV2}" PARENT_SCOPE)
            return()
        endif()
        message(FATAL_ERROR "report lacks the ${name} counter")
    endif()
    set(${out_var} "${CMAKE_MATCH_1}" PARENT_SCOPE)
endfunction()

read_counter("synth\\.fig9\\.converts_eliminated" eliminated)
read_counter("synth\\.fig9\\.baseline_converts_eliminated" base_elim)
read_counter("synth\\.fig9\\.cycles" cycles)
read_counter("synth\\.fig9\\.baseline_cycles" base_cycles)
read_counter("synth\\.fig9\\.kernels_worse" worse 0)
message(STATUS "synth fig9: eliminated ${base_elim} -> ${eliminated}, "
               "cycles ${base_cycles} -> ${cycles}, "
               "${worse} kernel(s) worse")

# 2. Strictly better than the 52-conversion propagation baseline.
if(NOT eliminated GREATER 52)
    message(FATAL_ERROR
        "synthesis eliminated only ${eliminated} conversions "
        "(need strictly more than the 52 propagation baseline)")
endif()
if(NOT eliminated GREATER base_elim)
    message(FATAL_ERROR
        "synthesis (${eliminated}) did not beat this run's own "
        "synth-off count (${base_elim})")
endif()

# 3. Never worse: per-kernel enforced in-process (kernels_worse), and
#    the totals must agree.
if(NOT worse EQUAL 0)
    message(FATAL_ERROR
        "${worse} kernel(s) priced worse with synthesis on — the "
        "never-worse guarantee is broken")
endif()
if(cycles GREATER base_cycles)
    message(FATAL_ERROR
        "total synth cycles ${cycles} exceed the synth-off baseline "
        "${base_cycles}")
endif()

# 4a. The perf gate accepts its own synth fields.
execute_process(
    COMMAND "${LLPROF}" --gate "${OUT_DIR}/baseline"
            "${OUT_DIR}/baseline"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "llprof gate failed on self vs self (rc ${rc})")
endif()

# 4b. One fewer eliminated conversion must trip the gate (the count is
#     deterministic — no tolerance applies).
math(EXPR fewer "${eliminated} - 1")
string(REPLACE
       "\"synth.fig9.converts_eliminated\": ${eliminated}"
       "\"synth.fig9.converts_eliminated\": ${fewer}"
       regressed "${report}")
if(regressed STREQUAL "${report}")
    message(FATAL_ERROR "failed to decrement the eliminated counter")
endif()
file(MAKE_DIRECTORY "${OUT_DIR}/regressed")
file(WRITE "${OUT_DIR}/regressed/BENCH_fig9_real_kernels.json"
     "${regressed}")
execute_process(
    COMMAND "${LLPROF}" --gate "${OUT_DIR}/baseline"
            "${OUT_DIR}/regressed"
    RESULT_VARIABLE rc)
if(rc EQUAL 0)
    message(FATAL_ERROR
        "gate passed a decremented eliminated count (want nonzero)")
endif()
