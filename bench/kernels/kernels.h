/**
 * @file
 * The TritonBench-style kernel suite behind Figure 9 and Table 6.
 *
 * Each builder constructs one CTA tile's worth of a real workload as a
 * mini-IR function: the GEMM family (f16 / fp8 / bf16xint16 / int4 /
 * grouped), the attention kernels whose second dot forces the
 * interesting MMA-output -> MMA-input conversion, the reduction kernels
 * (softmax / welford / layer_norm), and the data-movement kernels
 * (rope / embedding / gather_gemv). Builders are parameterized by a
 * size knob so each kernel contributes several input cases, mirroring
 * TritonBench's multiple inputs per benchmark.
 */

#ifndef LL_BENCH_KERNELS_H
#define LL_BENCH_KERNELS_H

#include <functional>
#include <string>
#include <vector>

#include "ir/function.h"

namespace ll {
namespace kernels {

/** A named kernel builder plus the tile sizes it is evaluated at. */
struct KernelSpec
{
    std::string name;
    std::vector<int32_t> sizes;
    std::function<ir::Function(int32_t)> build;
    /** Some kernels need resources absent on some GPUs (paper Section
     *  6.2: TMA-dependent kernels skip RTX4090/MI250). */
    bool needsTma = false;
    bool needsLargeShared = false;
};

ir::Function gemm(int32_t size);
ir::Function fp8Gemm(int32_t size);
ir::Function bf16xint16Gemm(int32_t size);
ir::Function int4Gemm(int32_t size);
ir::Function groupedGemm(int32_t size);
ir::Function templateAttention(int32_t size);
ir::Function flexAttention(int32_t size);
ir::Function softmax(int32_t size);
ir::Function welford(int32_t size);
ir::Function layerNorm(int32_t size);
ir::Function rope(int32_t size);
ir::Function embedding(int32_t size);
ir::Function gatherGemv(int32_t size);
ir::Function cumsum(int32_t size);

/** The full Figure 9 suite. */
std::vector<KernelSpec> allKernels();

} // namespace kernels
} // namespace ll

#endif // LL_BENCH_KERNELS_H
