#include "kernels.h"

namespace ll {
namespace kernels {

using ir::DType;
using ir::Function;

namespace {

/** A K-blocked GEMM tile: several dot steps accumulating, as the inner
 *  loop of a Triton GEMM does. */
Function
gemmLike(const std::string &name, DType aTy, DType bTy, int32_t size,
         bool upcastB, DType upcastTo)
{
    Function f(name);
    const int32_t m = size, n = size, kStep = 64;
    int acc = f.constant({DType::F32, {m, n}}, "zero");
    for (int step = 0; step < 2; ++step) {
        int a = f.load({aTy, {m, kStep}}, "a" + std::to_string(step));
        int b = f.load({bTy, {kStep, n}}, "b" + std::to_string(step));
        if (upcastB)
            b = f.elementwise({b}, upcastTo, "upcast");
        int c = f.dot(a, b, DType::F32);
        acc = f.elementwise({acc, c}, DType::F32, "add");
    }
    int out = f.elementwise({acc}, aTy == DType::I4 ? DType::F16 : aTy,
                            "downcast");
    f.store(out, "c");
    return f;
}

/** Softmax over the last dim: max, subtract, exp, sum, divide. */
int
appendSoftmax(Function &f, int scores, int32_t rows, int32_t cols)
{
    int mx = f.reduce(scores, 1, "max");
    int mxe = f.expandDims(mx, 1);
    int mxb = f.broadcast(mxe, {rows, cols});
    int centered = f.elementwise({scores, mxb}, DType::F32, "sub");
    int ex = f.elementwise({centered}, DType::F32, "exp");
    int sum = f.reduce(ex, 1, "sum");
    int sume = f.expandDims(sum, 1);
    int sumb = f.broadcast(sume, {rows, cols});
    return f.elementwise({ex, sumb}, DType::F32, "div");
}

} // namespace

Function
gemm(int32_t size)
{
    return gemmLike("gemm", DType::F16, DType::F16, size, false,
                    DType::F16);
}

Function
fp8Gemm(int32_t size)
{
    return gemmLike("fp8_gemm", DType::F8, DType::F8, size, false,
                    DType::F8);
}

Function
bf16xint16Gemm(int32_t size)
{
    return gemmLike("bf16xint16_gemm", DType::BF16, DType::I16, size,
                    true, DType::BF16);
}

Function
int4Gemm(int32_t size)
{
    return gemmLike("int4_gemm", DType::F16, DType::I4, size, true,
                    DType::F16);
}

Function
groupedGemm(int32_t size)
{
    Function f("grouped_gemm");
    const int32_t m = size, n = size, k = 64;
    int a = f.load({DType::F16, {m, k}}, "a");
    int b0 = f.load({DType::F16, {k, n}}, "b0");
    int b1 = f.load({DType::F16, {k, n}}, "b1");
    int c0 = f.dot(a, b0, DType::F32);
    int c1 = f.dot(a, b1, DType::F32);
    int c = f.elementwise({c0, c1}, DType::F32, "add");
    int out = f.elementwise({c}, DType::F16, "downcast");
    f.store(out, "c");
    return f;
}

Function
templateAttention(int32_t size)
{
    Function f("template_attention");
    const int32_t m = size, n = size, d = 64;
    int q = f.load({DType::F16, {m, d}}, "q");
    int kT = f.load({DType::F16, {d, n}}, "kT");
    int scores = f.dot(q, kT, DType::F32);
    int p = appendSoftmax(f, scores, m, n);
    int pf16 = f.elementwise({p}, DType::F16, "downcast");
    int v = f.load({DType::F16, {n, d}}, "v");
    // The second dot: its A operand is an MMA output, forcing the
    // conversion the paper highlights.
    int o = f.dot(pf16, v, DType::F32);
    int out = f.elementwise({o}, DType::F16, "downcast");
    f.store(out, "o");
    return f;
}

Function
flexAttention(int32_t size)
{
    Function f("flex_attention");
    const int32_t m = size, n = size, d = 64;
    int q = f.load({DType::F16, {m, d}}, "q");
    int kT = f.load({DType::F16, {d, n}}, "kT");
    int scores = f.dot(q, kT, DType::F32);
    // score_mod: user elementwise function plus a mask load.
    int mask = f.load({DType::F32, {m, n}}, "mask");
    int modded = f.elementwise({scores, mask}, DType::F32, "score_mod");
    int p = appendSoftmax(f, modded, m, n);
    int pf16 = f.elementwise({p}, DType::F16, "downcast");
    int v = f.load({DType::F16, {n, d}}, "v");
    int o = f.dot(pf16, v, DType::F32);
    int out = f.elementwise({o}, DType::F16, "downcast");
    f.store(out, "o");
    return f;
}

Function
softmax(int32_t size)
{
    Function f("softmax");
    int x = f.load({DType::F32, {4, size}}, "x");
    int y = appendSoftmax(f, x, 4, size);
    f.store(y, "y");
    return f;
}

Function
welford(int32_t size)
{
    Function f("welford");
    const int32_t rows = 4, cols = size;
    int x = f.load({DType::F32, {rows, cols}}, "x");
    int sum = f.reduce(x, 1, "sum");
    int mean = f.elementwise({sum}, DType::F32, "div_n");
    int meane = f.expandDims(mean, 1);
    int meanb = f.broadcast(meane, {rows, cols});
    int diff = f.elementwise({x, meanb}, DType::F32, "sub");
    int sq = f.elementwise({diff}, DType::F32, "mul");
    int m2 = f.reduce(sq, 1, "sum");
    f.store(mean, "mean");
    f.store(m2, "m2");
    return f;
}

Function
layerNorm(int32_t size)
{
    Function f("layer_norm");
    const int32_t rows = 4, cols = size;
    int x = f.load({DType::F32, {rows, cols}}, "x");
    int w = f.load({DType::F32, {1, cols}}, "w");
    int b = f.load({DType::F32, {1, cols}}, "b");
    int sum = f.reduce(x, 1, "sum");
    int mean = f.elementwise({sum}, DType::F32, "div_n");
    int meane = f.expandDims(mean, 1);
    int meanb = f.broadcast(meane, {rows, cols});
    int diff = f.elementwise({x, meanb}, DType::F32, "sub");
    int sq = f.elementwise({diff}, DType::F32, "mul");
    int var = f.reduce(sq, 1, "sum");
    int vare = f.expandDims(var, 1);
    int varb = f.broadcast(vare, {rows, cols});
    int normed = f.elementwise({diff, varb}, DType::F32, "rsqrt_mul");
    int wb = f.broadcast(w, {rows, cols});
    int bb = f.broadcast(b, {rows, cols});
    int scaled = f.elementwise({normed, wb}, DType::F32, "mul");
    int out = f.elementwise({scaled, bb}, DType::F32, "add");
    f.store(out, "y");
    return f;
}

Function
rope(int32_t size)
{
    Function f("rope");
    const int32_t s = size, d = 128;
    int x = f.load({DType::F16, {s, d}}, "x");
    int cs = f.load({DType::F16, {s, d / 2}}, "cos");
    int sn = f.load({DType::F16, {s, d / 2}}, "sin");
    // Interpret x as interleaved pairs: reshape to [s, d/2, 2], split.
    int xr = f.reshape(x, {s, d / 2, 2});
    auto [x0, x1] = f.split(xr);
    int a = f.elementwise({x0, cs}, DType::F16, "mul");
    int b = f.elementwise({x1, sn}, DType::F16, "mul");
    int r0 = f.elementwise({a, b}, DType::F16, "sub");
    int c = f.elementwise({x0, sn}, DType::F16, "mul");
    int d1 = f.elementwise({x1, cs}, DType::F16, "mul");
    int r1 = f.elementwise({c, d1}, DType::F16, "add");
    int joined = f.join(r0, r1);
    int out = f.reshape(joined, {s, d});
    f.store(out, "y");
    return f;
}

Function
embedding(int32_t size)
{
    Function f("embedding");
    const int32_t tokens = size, dim = 128;
    int table = f.load({DType::F16, {tokens, dim}}, "rows");
    int idx = f.load({DType::I32, {tokens, dim}}, "idx");
    int g = f.gather(table, idx, 0);
    f.store(g, "out");
    return f;
}

Function
gatherGemv(int32_t size)
{
    Function f("gather_gemv");
    const int32_t rows = size, cols = 128;
    int x = f.load({DType::F16, {rows, cols}}, "x");
    int idx = f.load({DType::I32, {rows, cols}}, "idx");
    int g = f.gather(x, idx, 1);
    int v = f.load({DType::F16, {rows, cols}}, "v");
    int prod = f.elementwise({g, v}, DType::F16, "mul");
    int y = f.reduce(prod, 1, "sum");
    f.store(y, "y");
    return f;
}

Function
cumsum(int32_t size)
{
    // The tl.cumsum workload from the layout-bug reports the paper
    // cites (Section 5.1): sum and scan in one kernel.
    Function f("cumsum");
    int x = f.load({DType::F32, {4, size}}, "x");
    int s = f.scan(x, 1, "cumsum");
    int total = f.reduce(x, 1, "sum");
    f.store(s, "prefix");
    f.store(total, "total");
    return f;
}

std::vector<KernelSpec>
allKernels()
{
    std::vector<KernelSpec> specs = {
        {"gemm", {64, 128, 256}, gemm, false, false},
        {"fp8_gemm", {64, 128, 256}, fp8Gemm, true, false},
        {"bf16xint16_gemm", {64, 128, 256}, bf16xint16Gemm, false, false},
        {"int4_gemm", {64, 128, 256}, int4Gemm, false, false},
        {"grouped_gemm", {64, 128, 256}, groupedGemm, false, false},
        {"template_attention", {64, 128}, templateAttention, false,
         false},
        {"flex_attention", {64, 128}, flexAttention, false, true},
        {"softmax", {1024, 4096, 16384}, softmax, false, false},
        {"welford", {1024, 4096}, welford, false, false},
        {"layer_norm", {1024, 4096}, layerNorm, false, false},
        {"rope", {256, 1024}, rope, false, false},
        {"embedding", {128, 512}, embedding, false, false},
        {"gather_gemv", {128, 512}, gatherGemv, false, false},
        {"cumsum", {1024, 4096}, cumsum, false, false},
    };
    return specs;
}

} // namespace kernels
} // namespace ll
