/**
 * @file
 * Figure 2: float8 transpose — optimal swizzling vs the legacy padding
 * heuristic across tensor tile shapes M x N.
 *
 * The kernel writes a row-major fragment to shared memory and reads it
 * back column-major (a transpose). Legacy Triton avoids bank conflicts
 * by padding each row; linear layouts compute the optimal swizzle of
 * Section 5.4 instead, which keeps full vectorization on both sides with
 * zero memory overhead. Reported speedup is padding-cycles over
 * swizzle-cycles per CTA, mirroring the paper's heatmap; correctness of
 * every swizzled conversion is verified on the simulator first.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "codegen/shared_exec.h"
#include "legacy/legacy.h"

namespace {

using namespace ll;
using bench::makeBlocked;

struct Case
{
    int32_t m, n;
    double speedup;
    int64_t paddedBytes, swizzleBytes;
};

/** Row-major writer / column-major reader layouts for an M x N f8
 *  tile processed by 4 warps. */
std::pair<LinearLayout, LinearLayout>
transposeLayouts(int32_t m, int32_t n)
{
    // Oversized resource counts broadcast harmlessly on small tiles.
    auto src = makeBlocked({1, 16}, {2, 16}, {2, 2}, {1, 0}, {m, n});
    auto dst = makeBlocked({16, 1}, {16, 2}, {2, 2}, {0, 1}, {m, n});
    return {src, dst};
}

Case
runCase(int32_t m, int32_t n, const sim::GpuSpec &spec)
{
    auto [src, dst] = transposeLayouts(m, n);
    auto swz = codegen::computeOptimalSwizzle(src, dst, 1, spec);
    double swizzleCycles =
        bench::swizzledConversionCycles(swz, src, dst, 1, spec);
    auto padded =
        legacy::paddedConversionCost(src, dst, {m, n}, 1, spec);

    // The whole transpose kernel also streams the tile through global
    // memory (coalesced on both sides); that part is identical for both
    // versions and damps the end-to-end speedup, as on real hardware.
    double globalCycles =
        2.0 * double(m) * n / 32.0 * spec.globalSectorCycles;
    Case c;
    c.m = m;
    c.n = n;
    c.speedup = (globalCycles + padded.cycles) /
                (globalCycles + swizzleCycles);
    c.paddedBytes = padded.sharedBytes;
    c.swizzleBytes = int64_t(m) * n;
    return c;
}

void
printTable()
{
    auto spec = sim::GpuSpec::gh200();
    bench::printHeader(
        "Figure 2: f8 transpose, optimal swizzle vs padding heuristic "
        "(speedup, GH200 model)");
    const std::vector<int32_t> ms = {32, 64, 128, 256, 512};
    const std::vector<int32_t> ns = {32, 64, 128, 256, 512};
    std::printf("%8s", "M\\N");
    for (int32_t n : ns)
        std::printf("%8d", n);
    std::printf("\n");
    for (int32_t m : ms) {
        std::printf("%8d", m);
        for (int32_t n : ns) {
            if (int64_t(m) * n > spec.sharedMemPerCta) {
                std::printf("%8s", "-");
                continue;
            }
            auto c = runCase(m, n, spec);
            std::printf("%8.2f", c.speedup);
        }
        std::printf("\n");
    }

    // Verify conversion correctness on a sample of tiles.
    bool allCorrect = true;
    for (int32_t m : {32, 64, 128}) {
        for (int32_t n : {32, 64, 128}) {
            auto [src, dst] = transposeLayouts(m, n);
            auto swz = codegen::computeOptimalSwizzle(src, dst, 1, spec);
            auto res =
                codegen::executeSharedConversion(swz, src, dst, 1, spec);
            allCorrect = allCorrect && res.ok() && res->correct;
        }
    }
    std::printf("swizzled conversions verified on simulator: %s\n",
                allCorrect ? "PASS" : "FAIL");
    std::printf("shared memory overhead (128x128): padding %lld B vs "
                "swizzle %lld B\n",
                static_cast<long long>(runCase(128, 128, spec)
                                           .paddedBytes),
                static_cast<long long>(128 * 128));
}

void
BM_OptimalSwizzlePlan(benchmark::State &state)
{
    auto spec = sim::GpuSpec::gh200();
    int32_t m = static_cast<int32_t>(state.range(0));
    int32_t n = static_cast<int32_t>(state.range(1));
    auto [src, dst] = transposeLayouts(m, n);
    double speedup = runCase(m, n, spec).speedup;
    for (auto _ : state) {
        auto swz = codegen::computeOptimalSwizzle(src, dst, 1, spec);
        benchmark::DoNotOptimize(swz);
    }
    state.counters["speedup_vs_padding"] = speedup;
}

BENCHMARK(BM_OptimalSwizzlePlan)
    ->Args({64, 64})
    ->Args({128, 128})
    ->Args({256, 128})
    ->Args({128, 512});

} // namespace

int
main(int argc, char **argv)
{
    ll::bench::emitBenchJson("fig2_transpose_swizzle", [] { printTable(); });
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
