# Speed guard for the word-parallel F2 core: run the fig9 planning
# sweep twice — once on the scalar reference paths (LL_F2_REFERENCE=1)
# and once on the word-parallel paths — and fail unless the fast run
# finishes in at most half the reference wall time. The ratio, not the
# absolute time, is the contract, so debug builds and loaded CI hosts
# do not flake it. LL_FIG9_KERNELS keeps the reference run affordable:
# the two shared-rung-heavy kernels dominate the planning cost and are
# exactly where the word-parallel rewrite pays off.
#
# Script arguments (via -D):
#   FIG9     path to the fig9_real_kernels binary
#   OUT_DIR  scratch dir for the emitted reports

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

function(run_fig9 refmode out_var)
    string(TIMESTAMP t0 "%s")
    execute_process(
        COMMAND ${CMAKE_COMMAND} -E env
                LL_BENCH_REPS=1 "LL_BENCH_JSON_DIR=${OUT_DIR}"
                LL_FIG9_KERNELS=gemm,template_attention
                "LL_F2_REFERENCE=${refmode}"
                "${FIG9}" --benchmark_filter=__nobench__
        RESULT_VARIABLE rc
        OUTPUT_QUIET)
    if(NOT rc EQUAL 0)
        message(FATAL_ERROR
            "fig9 (LL_F2_REFERENCE=${refmode}) exited with ${rc}")
    endif()
    string(TIMESTAMP t1 "%s")
    math(EXPR dt "${t1} - ${t0}")
    set(${out_var} ${dt} PARENT_SCOPE)
endfunction()

run_fig9(1 ref_seconds)
run_fig9(0 fast_seconds)

# Clamp to 1s: TIMESTAMP has whole-second resolution and the fast run
# can round to zero.
if(fast_seconds LESS 1)
    set(fast_seconds 1)
endif()
math(EXPR required "2 * ${fast_seconds}")
message(STATUS "fig9 subset wall time: reference ${ref_seconds}s, "
               "word-parallel ${fast_seconds}s")
if(ref_seconds LESS required)
    message(FATAL_ERROR
        "word-parallel fig9 run (${fast_seconds}s) is not at least 2x "
        "faster than the scalar reference run (${ref_seconds}s)")
endif()
