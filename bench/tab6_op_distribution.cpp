/**
 * @file
 * Table 6: distribution of shared-memory (local_load / local_store) and
 * convert_layout operations per real kernel, as produced by the layout
 * engine on the GH200 model — the evidence that the Figure 9 gains come
 * from optimizing these operations. Also breaks down how each
 * conversion was lowered, which legacy Triton cannot do at all.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "engine/cost_model.h"
#include "engine/layout_engine.h"
#include "kernels.h"

namespace {

using namespace ll;

void
printTable()
{
    auto spec = sim::GpuSpec::gh200();
    bench::printHeader(
        "Table 6: local memory and convert_layout op distribution "
        "(GH200 model, largest input)");
    std::printf("%-20s %7s %8s %9s   %s\n", "kernel", "#Load", "#Store",
                "#Convert", "lowering (noop/permute/shuffle/shared)");
    for (const auto &k : kernels::allKernels()) {
        ir::Function f = k.build(k.sizes.back());
        engine::LayoutEngine eng({spec, 4});
        eng.run(f);
        auto cost = engine::estimateKernelCost(f, spec, 4);
        std::printf("%-20s %7d %8d %9d   %d/%d/%d/%d\n", k.name.c_str(),
                    cost.localLoads, cost.localStores, cost.converts,
                    cost.noopConversions, cost.permuteConversions,
                    cost.shuffleConversions, cost.sharedConversions);
    }
    std::printf("(#Load/#Store include reduction partials and dot "
                "operand staging)\n");
}

void
BM_CostModelOnKernel(benchmark::State &state)
{
    auto suite = kernels::allKernels();
    const auto &k = suite[static_cast<size_t>(state.range(0))];
    auto spec = sim::GpuSpec::gh200();
    ir::Function f = k.build(k.sizes[0]);
    engine::LayoutEngine eng({spec, 4});
    eng.run(f);
    for (auto _ : state) {
        auto cost = engine::estimateKernelCost(f, spec, 4);
        benchmark::DoNotOptimize(cost);
    }
    state.SetLabel(k.name);
}

BENCHMARK(BM_CostModelOnKernel)->Arg(0)->Arg(5);

} // namespace

int
main(int argc, char **argv)
{
    ll::bench::emitBenchJson("tab6_op_distribution", [] { printTable(); });
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
