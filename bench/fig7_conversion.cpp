/**
 * @file
 * Figure 7: layout conversion speedups — warp shuffles vs the legacy
 * always-through-shared-memory path, across tensor sizes and dtypes.
 *
 * Source and destination are blocked layouts with identical warp tiling
 * but different thread/register assignment, so the conversion map
 * B^-1 . A fixes warps and the Section 5.4 shuffle plan applies. Legacy
 * Triton cannot detect this and round-trips through padded shared
 * memory. Every shuffle plan is executed on the simulator and verified
 * element by element before being priced.
 */

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "codegen/conversion.h"
#include "legacy/legacy.h"

namespace {

using namespace ll;
using bench::makeBlocked;

struct ConvCase
{
    LinearLayout src, dst;
    triton::Shape shape;
};

/** A conversion with matched warp tiles: rows-of-registers to
 *  columns-of-registers within each warp. */
ConvCase
makeCase(int32_t rows, int32_t cols)
{
    ConvCase c;
    c.shape = {rows, cols};
    c.src = makeBlocked({1, 8}, {8, 4}, {2, 2}, {1, 0}, c.shape);
    c.dst = makeBlocked({8, 1}, {1, 32}, {2, 2}, {1, 0}, c.shape);
    return c;
}

bool
verifyPlan(const ConvCase &c, const codegen::WarpShufflePlan &plan)
{
    const int regLog = c.src.getInDimSizeLog2("register");
    std::vector<std::vector<uint64_t>> regs(
        static_cast<size_t>(plan.warpSize));
    for (int lane = 0; lane < plan.warpSize; ++lane) {
        for (int reg = 0; reg < plan.numRegsA; ++reg) {
            regs[static_cast<size_t>(lane)].push_back(c.src.applyFlat(
                static_cast<uint64_t>(reg) |
                (static_cast<uint64_t>(lane) << regLog)));
        }
    }
    auto outOr = plan.execute(regs);
    if (!outOr.ok())
        return false;
    auto &out = *outOr;
    const int dstRegLog = c.dst.getInDimSizeLog2("register");
    for (int lane = 0; lane < plan.warpSize; ++lane) {
        for (int reg = 0; reg < plan.numRegsB; ++reg) {
            uint64_t want = c.dst.applyFlat(
                static_cast<uint64_t>(reg) |
                (static_cast<uint64_t>(lane) << dstRegLog));
            if (out[static_cast<size_t>(lane)][static_cast<size_t>(reg)] !=
                want) {
                return false;
            }
        }
    }
    return true;
}

void
printTable()
{
    auto spec = sim::GpuSpec::gh200();
    bench::printHeader(
        "Figure 7: layout conversion, warp shuffles vs legacy shared "
        "memory (speedup, GH200 model)");
    std::printf("%-14s %8s %18s %12s %12s %9s %7s\n", "shape", "dtype",
                "lowering", "linear cyc", "legacy cyc", "speedup",
                "check");
    const std::pair<int, const char *> dtypes[] = {
        {1, "f8"}, {2, "f16"}, {4, "f32"}};
    for (int32_t rows : {16, 32, 64, 128}) {
        for (int32_t cols : {64, 128, 256}) {
            for (auto [elemBytes, name] : dtypes) {
                auto c = makeCase(rows, cols);
                auto plan = codegen::planConversion(c.src, c.dst,
                                                    elemBytes, spec);
                double linearCycles =
                    plan.estimateCycles(c.src, elemBytes, spec);
                auto padded = legacy::paddedConversionCost(
                    c.src, c.dst, c.shape, elemBytes, spec);
                bool ok = true;
                if (plan.kind == codegen::ConversionKind::WarpShuffle)
                    ok = verifyPlan(c, *plan.shuffle);
                std::printf("[%4d,%4d]   %8s %18s %12.0f %12.0f %8.2fx"
                            " %6s\n",
                            rows, cols, name,
                            toString(plan.kind).c_str(), linearCycles,
                            padded.cycles, padded.cycles / linearCycles,
                            ok ? "PASS" : "FAIL");
            }
        }
    }
}

void
BM_ShufflePlanAndExecute(benchmark::State &state)
{
    auto spec = sim::GpuSpec::gh200();
    auto c = makeCase(static_cast<int32_t>(state.range(0)),
                      static_cast<int32_t>(state.range(1)));
    auto plan = codegen::planWarpShuffle(c.src, c.dst, 2, spec);
    if (!plan.has_value()) {
        state.SkipWithError("no shuffle plan");
        return;
    }
    std::vector<std::vector<uint64_t>> regs(
        static_cast<size_t>(plan->warpSize),
        std::vector<uint64_t>(static_cast<size_t>(plan->numRegsA), 1));
    for (auto _ : state) {
        auto out = plan->execute(regs);
        benchmark::DoNotOptimize(out);
    }
    state.counters["shuffle_instructions"] = static_cast<double>(
        plan->countShuffleInstructions(2));
}

BENCHMARK(BM_ShufflePlanAndExecute)
    ->Args({32, 64})
    ->Args({64, 128})
    ->Args({128, 256});

} // namespace

int
main(int argc, char **argv)
{
    ll::bench::emitBenchJson("fig7_conversion", [] { printTable(); });
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
