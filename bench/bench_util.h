/**
 * @file
 * Shared helpers for the experiment benchmarks: table printing, blocked
 * layout shorthand, and the shared-conversion cost composition used by
 * several figures.
 */

#ifndef LL_BENCH_BENCH_UTIL_H
#define LL_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <vector>

#include "codegen/swizzle.h"
#include "layout/linear_layout.h"
#include "sim/gpu_spec.h"
#include "triton/encodings.h"

namespace ll {
namespace bench {

inline LinearLayout
makeBlocked(const triton::Shape &spt, const triton::Shape &tpw,
            const triton::Shape &wpc, const std::vector<int32_t> &order,
            const triton::Shape &shape)
{
    triton::BlockedEncoding enc;
    enc.sizePerThread = spt;
    enc.threadsPerWarp = tpw;
    enc.warpsPerCta = wpc;
    enc.order = order;
    return enc.toLinearLayout(shape);
}

/** Modeled cycles of a conversion through an optimally swizzled shared
 *  layout (store + load + round trip), per warp. */
inline double
swizzledConversionCycles(const codegen::SwizzledShared &swz,
                         const LinearLayout &src, const LinearLayout &dst,
                         int elemBytes, const sim::GpuSpec &spec)
{
    auto regsOf = [](const LinearLayout &l) {
        return l.hasInDim("register") ? l.getInDimSize("register") : 1;
    };
    int vec = swz.vecElems();
    double storeInsts = std::max(1, regsOf(src) / vec);
    double loadInsts = std::max(1, regsOf(dst) / vec);
    double storeWf = static_cast<double>(
        codegen::analyticWavefronts(swz, src, elemBytes, spec));
    double loadWf = static_cast<double>(codegen::analyticWavefronts(
        swz, dst.transposeOuts(src.getOutDimNames()), elemBytes, spec));
    return storeInsts * storeWf * spec.sharedWavefrontCycles +
           loadInsts * loadWf * spec.sharedWavefrontCycles +
           spec.sharedRoundTripCycles;
}

inline void
printRule(int width = 78)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

inline void
printHeader(const std::string &title)
{
    printRule();
    std::printf("%s\n", title.c_str());
    printRule();
}

} // namespace bench
} // namespace ll

#endif // LL_BENCH_BENCH_UTIL_H
