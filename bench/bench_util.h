/**
 * @file
 * Shared helpers for the experiment benchmarks: table printing, blocked
 * layout shorthand, and the shared-conversion cost composition used by
 * several figures.
 */

#ifndef LL_BENCH_BENCH_UTIL_H
#define LL_BENCH_BENCH_UTIL_H

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <vector>

#include <fcntl.h>
#include <unistd.h>

#include "codegen/swizzle.h"
#include "layout/linear_layout.h"
#include "sim/gpu_spec.h"
#include "support/ledger.h"
#include "support/metrics.h"
#include "triton/encodings.h"

namespace ll {
namespace bench {

inline LinearLayout
makeBlocked(const triton::Shape &spt, const triton::Shape &tpw,
            const triton::Shape &wpc, const std::vector<int32_t> &order,
            const triton::Shape &shape)
{
    triton::BlockedEncoding enc;
    enc.sizePerThread = spt;
    enc.threadsPerWarp = tpw;
    enc.warpsPerCta = wpc;
    enc.order = order;
    return enc.toLinearLayout(shape);
}

/** Modeled cycles of a conversion through an optimally swizzled shared
 *  layout (store + load + round trip), per warp. */
inline double
swizzledConversionCycles(const codegen::SwizzledShared &swz,
                         const LinearLayout &src, const LinearLayout &dst,
                         int elemBytes, const sim::GpuSpec &spec)
{
    auto regsOf = [](const LinearLayout &l) {
        return l.hasInDim("register") ? l.getInDimSize("register") : 1;
    };
    int vec = swz.vecElems();
    double storeInsts = std::max(1, regsOf(src) / vec);
    double loadInsts = std::max(1, regsOf(dst) / vec);
    double storeWf = static_cast<double>(
        codegen::analyticWavefronts(swz, src, elemBytes, spec));
    double loadWf = static_cast<double>(codegen::analyticWavefronts(
        swz, dst.transposeOuts(src.getOutDimNames()), elemBytes, spec));
    return storeInsts * storeWf * spec.sharedWavefrontCycles +
           loadInsts * loadWf * spec.sharedWavefrontCycles +
           spec.sharedRoundTripCycles;
}

inline void
printRule(int width = 78)
{
    for (int i = 0; i < width; ++i)
        std::putchar('-');
    std::putchar('\n');
}

inline void
printHeader(const std::string &title)
{
    printRule();
    std::printf("%s\n", title.c_str());
    printRule();
}

/** Nearest-rank percentile of an unsorted sample (p in [0, 100]). */
inline double
percentileMs(std::vector<double> samples, double p)
{
    std::sort(samples.begin(), samples.end());
    size_t rank = static_cast<size_t>(
        p / 100.0 * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[std::min(rank, samples.size() - 1)];
}

/**
 * Run a figure's experiment `fn` LL_BENCH_REPS times (default 5) and
 * write a machine-readable BENCH_<name>.json report next to the
 * process (or into $LL_BENCH_JSON_DIR): name, rep count, wall-time
 * median / p90 / min / mean in milliseconds, and the delta of every
 * metrics-registry counter the reps moved. The first rep prints
 * normally — it is the human-facing table — and the remaining reps run
 * with stdout parked on /dev/null so timing reps do not repeat it.
 *
 * The schema here is a contract: llstat --validate-bench-json (and the
 * bench_json_smoke ctest entry) reject reports that drift from it.
 *
 * The run also carves a per-bench calibration ledger: recording is
 * enabled for the reps and the records flush to LEDGER_<name>.jsonl
 * next to the BENCH json, pairing every report's wall times with the
 * predicted-vs-measured rung corpus that produced them (llprof ingests
 * the pair). The ledger is cleared before and after, so each bench
 * attributes exactly its own conversions and the prior enabled state
 * is restored.
 */
inline void
emitBenchJson(const std::string &name, const std::function<void()> &fn)
{
    int reps = 5;
    if (const char *env = std::getenv("LL_BENCH_REPS"))
        reps = std::max(1, std::atoi(env));

    const bool ledgerWasEnabled = ledger::enabled();
    ledger::Ledger::instance().clear();
    ledger::Ledger::instance().setEnabled(true);

    auto before = metrics::Registry::instance().counterSnapshot();
    std::vector<double> wallMs;
    wallMs.reserve(static_cast<size_t>(reps));
    for (int rep = 0; rep < reps; ++rep) {
        int savedStdout = -1;
        if (rep > 0) {
            std::fflush(stdout);
            savedStdout = ::dup(1);
            int devnull = ::open("/dev/null", O_WRONLY);
            if (devnull >= 0) {
                ::dup2(devnull, 1);
                ::close(devnull);
            }
        }
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        if (savedStdout >= 0) {
            std::fflush(stdout);
            ::dup2(savedStdout, 1);
            ::close(savedStdout);
        }
        wallMs.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
    }
    auto after = metrics::Registry::instance().counterSnapshot();

    std::string dir = ".";
    if (const char *env = std::getenv("LL_BENCH_JSON_DIR"))
        dir = env;

    auto &ledger = ledger::Ledger::instance();
    ledger.setEnabled(ledgerWasEnabled);
    if (ledger.recordCount() > 0) {
        const std::string ledgerPath =
            dir + "/LEDGER_" + name + ".jsonl";
        std::ofstream los(ledgerPath);
        if (los.good()) {
            ledger.writeJsonl(los);
            std::printf("bench: wrote %s (%lld record(s))\n",
                        ledgerPath.c_str(),
                        static_cast<long long>(ledger.recordCount()));
        } else {
            std::fprintf(stderr, "bench: cannot write %s\n",
                         ledgerPath.c_str());
        }
    }
    ledger.clear();

    double mean = 0.0;
    for (double w : wallMs)
        mean += w;
    mean /= static_cast<double>(wallMs.size());

    const std::string path = dir + "/BENCH_" + name + ".json";
    std::ofstream os(path);
    if (!os.good()) {
        std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
        return;
    }
    os << "{\n"
       << "  \"name\": \"" << name << "\",\n"
       << "  \"reps\": " << reps << ",\n"
       << "  \"wall_ms\": {";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "\"median\": %.6g, \"p90\": %.6g, \"min\": %.6g, "
                  "\"mean\": %.6g",
                  percentileMs(wallMs, 50.0), percentileMs(wallMs, 90.0),
                  *std::min_element(wallMs.begin(), wallMs.end()), mean);
    os << buf << "},\n"
       << "  \"metrics\": {";
    bool first = true;
    for (const auto &[key, value] : after) {
        auto it = before.find(key);
        long long delta =
            value - (it == before.end() ? 0 : it->second);
        if (delta == 0)
            continue;
        os << (first ? "" : ", ") << "\"" << key << "\": " << delta;
        first = false;
    }
    os << "}\n}\n";
    std::printf("bench: wrote %s (%d reps)\n", path.c_str(), reps);
}

} // namespace bench
} // namespace ll

#endif // LL_BENCH_BENCH_UTIL_H
