/**
 * @file
 * Table 4: reduction support and shared-memory store counts per layout
 * family.
 *
 * For every family in Figure 3 (plus a custom layout no legacy encoding
 * can express) we run a reduction over the paper's shape set. The
 * linear-layout side is *computed*: the sliced result layout is built,
 * duplicate data is detected through free-variable masks, and only
 * unique elements are stored. The legacy side uses the published support
 * matrix and stores every thread's partials.
 */

#include <benchmark/benchmark.h>

#include <functional>

#include "bench_util.h"
#include "engine/shape_transfer.h"
#include "legacy/legacy.h"

namespace {

using namespace ll;
using legacy::LayoutKind;

const std::vector<triton::Shape> kShapes = {
    {128, 16}, {128, 128}, {32, 128}, {32, 32}, {16, 16}};

LinearLayout
blockedVariant(int v, const triton::Shape &shape)
{
    triton::BlockedEncoding enc;
    switch (v % 4) {
      case 0:
        enc.sizePerThread = {1, 4};
        enc.threadsPerWarp = {8, 4};
        enc.warpsPerCta = {2, 2};
        enc.order = {1, 0};
        break;
      case 1:
        enc.sizePerThread = {4, 1};
        enc.threadsPerWarp = {4, 8};
        enc.warpsPerCta = {1, 4};
        enc.order = {0, 1};
        break;
      case 2:
        enc.sizePerThread = {2, 2};
        enc.threadsPerWarp = {16, 2};
        enc.warpsPerCta = {4, 1};
        enc.order = {1, 0};
        break;
      default:
        enc.sizePerThread = {1, 1};
        enc.threadsPerWarp = {1, 32};
        enc.warpsPerCta = {2, 2};
        enc.order = {1, 0};
        break;
    }
    return enc.toLinearLayout(shape);
}

LinearLayout
mmaVariant(int v, const triton::Shape &shape)
{
    triton::MmaEncoding enc;
    enc.version = 2;
    enc.warpsPerCta = (v % 2 == 0) ? triton::Shape{2, 2}
                                   : triton::Shape{4, 1};
    return enc.toLinearLayout(shape);
}

LinearLayout
mmaInputVariant(int v, const triton::Shape &shape)
{
    triton::DotOperandEncoding enc;
    enc.parent.version = 2;
    enc.parent.warpsPerCta = {2, 2};
    enc.opIdx = 0;
    enc.bitwidth = (v % 2 == 0) ? 16 : 8;
    return enc.toLinearLayout(shape);
}

/** A distributed layout interleaving dims in a pattern no legacy
 *  encoding expresses. */
LinearLayout
customVariant(int v, const triton::Shape &shape)
{
    // Assign bits round-robin across (dim1, dim0), registers first.
    int b0 = 0, b1 = 0;
    auto nextBasis = [&](int which) {
        std::vector<int32_t> basis = {0, 0};
        if (which == 1 && (int32_t(1) << b1) < shape[1]) {
            basis[0] = int32_t(1) << b1++;
        } else if ((int32_t(1) << b0) < shape[0]) {
            basis[1] = int32_t(1) << b0++;
        } else if ((int32_t(1) << b1) < shape[1]) {
            basis[0] = int32_t(1) << b1++;
        }
        return basis;
    };
    LinearLayout::BasesT bases;
    std::vector<std::vector<int32_t>> regs, lanes, warps;
    regs.push_back(nextBasis(v % 2));
    regs.push_back(nextBasis(1 - v % 2));
    for (int i = 0; i < 5; ++i)
        lanes.push_back(nextBasis((i + v) % 2));
    for (int i = 0; i < 2; ++i)
        warps.push_back(nextBasis(i % 2));
    bases.insert("register", regs);
    bases.insert("lane", lanes);
    bases.insert("warp", warps);
    LinearLayout partial(
        std::move(bases),
        {{"dim1", int32_t(1) << b1}, {"dim0", int32_t(1) << b0}},
        /*requireSurjective=*/false);
    // Cover whatever remains with extra registers.
    LinearLayout full = partial;
    if ((shape[1] >> b1) > 1)
        full = full * LinearLayout::identity1D(shape[1] >> b1,
                                               "register", "dim1");
    if ((shape[0] >> b0) > 1)
        full = full * LinearLayout::identity1D(shape[0] >> b0,
                                               "register", "dim0");
    return full.transposeIns({"register", "lane", "warp"});
}

struct Row
{
    LayoutKind kind;
    int variants;
    bool sliced;
    std::function<LinearLayout(int, const triton::Shape &)> make;
};

void
printTable()
{
    auto spec = sim::GpuSpec::gh200();
    bench::printHeader(
        "Table 4: reduction support and #shared-memory store "
        "instructions per layout family");
    std::printf("%-20s %9s %9s %14s %14s\n", "Layout", "Triton",
                "T-Linear", "legacy #st", "linear #st");

    const Row rows[] = {
        {LayoutKind::Blocked, 4, false, blockedVariant},
        {LayoutKind::Mma, 4, false, mmaVariant},
        {LayoutKind::MmaInput, 2, false, mmaInputVariant},
        {LayoutKind::SlicedBlocked, 4, true, blockedVariant},
        {LayoutKind::SlicedMma, 2, true, mmaVariant},
        {LayoutKind::SlicedMmaInput, 2, true, mmaInputVariant},
        {LayoutKind::Custom, 2, false, customVariant},
    };
    for (const Row &row : rows) {
        int total = 0, linearPass = 0, legacyPass = 0;
        int64_t legacyStores = 0, linearStores = 0;
        bool legacySupported = legacy::legacySupportsReduction(row.kind);
        for (int v = 0; v < row.variants; ++v) {
            for (const auto &shape : kShapes) {
                ++total;
                LinearLayout layout = row.make(v, shape);
                int axis = 1;
                if (row.sliced) {
                    layout = triton::sliceLayout(layout, 1);
                    axis = 0;
                }
                // Triton-Linear: genuinely construct the reduction.
                try {
                    LinearLayout result =
                        engine::reduceTransfer(layout, axis);
                    if (result.isSurjective())
                        ++linearPass;
                    linearStores += legacy::linearReductionSharedStores(
                        layout, axis, spec);
                } catch (const std::exception &) {
                    // construction failure counts as a failed case
                }
                if (legacySupported) {
                    ++legacyPass;
                    legacyStores += legacy::legacyReductionSharedStores(
                        layout, axis, spec);
                }
            }
        }
        char legacyStoreBuf[32];
        if (legacySupported) {
            std::snprintf(legacyStoreBuf, sizeof legacyStoreBuf, "%lld",
                          static_cast<long long>(legacyStores));
        } else {
            std::snprintf(legacyStoreBuf, sizeof legacyStoreBuf, "N/A");
        }
        double cut =
            legacySupported && legacyStores > 0
                ? 100.0 * (legacyStores - linearStores) / legacyStores
                : 0.0;
        std::printf("%-20s %5d/%-3d %5d/%-3d %14s %10lld (%3.0f%%)\n",
                    legacy::toString(row.kind).c_str(), legacyPass,
                    total, linearPass, total, legacyStoreBuf,
                    static_cast<long long>(linearStores),
                    -cut);
    }
    std::printf("(negative %% = stores saved by duplicate detection)\n");
}

void
BM_ReduceTransfer(benchmark::State &state)
{
    auto layout = blockedVariant(0, {128, 128});
    for (auto _ : state) {
        auto r = ll::engine::reduceTransfer(layout, 1);
        benchmark::DoNotOptimize(r);
    }
}

BENCHMARK(BM_ReduceTransfer);

} // namespace

int
main(int argc, char **argv)
{
    ll::bench::emitBenchJson("tab4_broadcast", [] { printTable(); });
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
