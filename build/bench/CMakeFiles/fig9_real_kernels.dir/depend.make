# Empty dependencies file for fig9_real_kernels.
# This may be replaced when dependencies are built.
