file(REMOVE_RECURSE
  "CMakeFiles/fig9_real_kernels.dir/fig9_real_kernels.cpp.o"
  "CMakeFiles/fig9_real_kernels.dir/fig9_real_kernels.cpp.o.d"
  "fig9_real_kernels"
  "fig9_real_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_real_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
