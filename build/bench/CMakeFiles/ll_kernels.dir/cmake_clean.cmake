file(REMOVE_RECURSE
  "CMakeFiles/ll_kernels.dir/kernels/kernels.cpp.o"
  "CMakeFiles/ll_kernels.dir/kernels/kernels.cpp.o.d"
  "libll_kernels.a"
  "libll_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ll_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
