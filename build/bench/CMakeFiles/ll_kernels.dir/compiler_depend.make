# Empty compiler generated dependencies file for ll_kernels.
# This may be replaced when dependencies are built.
