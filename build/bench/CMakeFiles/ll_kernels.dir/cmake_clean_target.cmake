file(REMOVE_RECURSE
  "libll_kernels.a"
)
