
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig2_transpose_swizzle.cpp" "bench/CMakeFiles/fig2_transpose_swizzle.dir/fig2_transpose_swizzle.cpp.o" "gcc" "bench/CMakeFiles/fig2_transpose_swizzle.dir/fig2_transpose_swizzle.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/engine/CMakeFiles/ll_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/legacy/CMakeFiles/ll_legacy.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/ll_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/triton/CMakeFiles/ll_triton.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ll_sim.dir/DependInfo.cmake"
  "/root/repo/build/bench/CMakeFiles/ll_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/ll_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/ll_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/f2/CMakeFiles/ll_f2.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ll_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
