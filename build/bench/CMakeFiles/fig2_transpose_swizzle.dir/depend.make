# Empty dependencies file for fig2_transpose_swizzle.
# This may be replaced when dependencies are built.
