file(REMOVE_RECURSE
  "CMakeFiles/fig2_transpose_swizzle.dir/fig2_transpose_swizzle.cpp.o"
  "CMakeFiles/fig2_transpose_swizzle.dir/fig2_transpose_swizzle.cpp.o.d"
  "fig2_transpose_swizzle"
  "fig2_transpose_swizzle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_transpose_swizzle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
