file(REMOVE_RECURSE
  "CMakeFiles/tab3_contiguity.dir/tab3_contiguity.cpp.o"
  "CMakeFiles/tab3_contiguity.dir/tab3_contiguity.cpp.o.d"
  "tab3_contiguity"
  "tab3_contiguity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_contiguity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
