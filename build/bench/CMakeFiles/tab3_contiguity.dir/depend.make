# Empty dependencies file for tab3_contiguity.
# This may be replaced when dependencies are built.
