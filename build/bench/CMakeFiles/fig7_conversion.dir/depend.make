# Empty dependencies file for fig7_conversion.
# This may be replaced when dependencies are built.
