file(REMOVE_RECURSE
  "CMakeFiles/fig7_conversion.dir/fig7_conversion.cpp.o"
  "CMakeFiles/fig7_conversion.dir/fig7_conversion.cpp.o.d"
  "fig7_conversion"
  "fig7_conversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
