# Empty compiler generated dependencies file for fig8_gather.
# This may be replaced when dependencies are built.
