file(REMOVE_RECURSE
  "CMakeFiles/fig8_gather.dir/fig8_gather.cpp.o"
  "CMakeFiles/fig8_gather.dir/fig8_gather.cpp.o.d"
  "fig8_gather"
  "fig8_gather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_gather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
