file(REMOVE_RECURSE
  "CMakeFiles/tab4_broadcast.dir/tab4_broadcast.cpp.o"
  "CMakeFiles/tab4_broadcast.dir/tab4_broadcast.cpp.o.d"
  "tab4_broadcast"
  "tab4_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab4_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
