# Empty dependencies file for tab4_broadcast.
# This may be replaced when dependencies are built.
