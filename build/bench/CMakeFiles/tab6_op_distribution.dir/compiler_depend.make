# Empty compiler generated dependencies file for tab6_op_distribution.
# This may be replaced when dependencies are built.
