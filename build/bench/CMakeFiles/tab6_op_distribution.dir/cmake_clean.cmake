file(REMOVE_RECURSE
  "CMakeFiles/tab6_op_distribution.dir/tab6_op_distribution.cpp.o"
  "CMakeFiles/tab6_op_distribution.dir/tab6_op_distribution.cpp.o.d"
  "tab6_op_distribution"
  "tab6_op_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab6_op_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
