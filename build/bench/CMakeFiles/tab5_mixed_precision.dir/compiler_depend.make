# Empty compiler generated dependencies file for tab5_mixed_precision.
# This may be replaced when dependencies are built.
