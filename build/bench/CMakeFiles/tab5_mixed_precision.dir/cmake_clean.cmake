file(REMOVE_RECURSE
  "CMakeFiles/tab5_mixed_precision.dir/tab5_mixed_precision.cpp.o"
  "CMakeFiles/tab5_mixed_precision.dir/tab5_mixed_precision.cpp.o.d"
  "tab5_mixed_precision"
  "tab5_mixed_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab5_mixed_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
