file(REMOVE_RECURSE
  "CMakeFiles/fig6_mxfp4_gemm.dir/fig6_mxfp4_gemm.cpp.o"
  "CMakeFiles/fig6_mxfp4_gemm.dir/fig6_mxfp4_gemm.cpp.o.d"
  "fig6_mxfp4_gemm"
  "fig6_mxfp4_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_mxfp4_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
