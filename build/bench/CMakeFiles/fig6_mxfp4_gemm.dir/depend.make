# Empty dependencies file for fig6_mxfp4_gemm.
# This may be replaced when dependencies are built.
