file(REMOVE_RECURSE
  "CMakeFiles/ir_engine_test.dir/ir_engine_test.cpp.o"
  "CMakeFiles/ir_engine_test.dir/ir_engine_test.cpp.o.d"
  "ir_engine_test"
  "ir_engine_test.pdb"
  "ir_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
