# Empty dependencies file for f2_subspace_test.
# This may be replaced when dependencies are built.
