file(REMOVE_RECURSE
  "CMakeFiles/f2_subspace_test.dir/f2_subspace_test.cpp.o"
  "CMakeFiles/f2_subspace_test.dir/f2_subspace_test.cpp.o.d"
  "f2_subspace_test"
  "f2_subspace_test.pdb"
  "f2_subspace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f2_subspace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
