file(REMOVE_RECURSE
  "CMakeFiles/affine_layout_test.dir/affine_layout_test.cpp.o"
  "CMakeFiles/affine_layout_test.dir/affine_layout_test.cpp.o.d"
  "affine_layout_test"
  "affine_layout_test.pdb"
  "affine_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/affine_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
