# Empty compiler generated dependencies file for affine_layout_test.
# This may be replaced when dependencies are built.
