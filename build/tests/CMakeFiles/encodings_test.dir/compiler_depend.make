# Empty compiler generated dependencies file for encodings_test.
# This may be replaced when dependencies are built.
