file(REMOVE_RECURSE
  "CMakeFiles/encodings_test.dir/encodings_test.cpp.o"
  "CMakeFiles/encodings_test.dir/encodings_test.cpp.o.d"
  "encodings_test"
  "encodings_test.pdb"
  "encodings_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encodings_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
