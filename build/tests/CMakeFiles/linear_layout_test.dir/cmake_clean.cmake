file(REMOVE_RECURSE
  "CMakeFiles/linear_layout_test.dir/linear_layout_test.cpp.o"
  "CMakeFiles/linear_layout_test.dir/linear_layout_test.cpp.o.d"
  "linear_layout_test"
  "linear_layout_test.pdb"
  "linear_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
