# Empty compiler generated dependencies file for linear_layout_test.
# This may be replaced when dependencies are built.
