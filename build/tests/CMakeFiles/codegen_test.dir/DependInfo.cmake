
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/codegen_test.cpp" "tests/CMakeFiles/codegen_test.dir/codegen_test.cpp.o" "gcc" "tests/CMakeFiles/codegen_test.dir/codegen_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codegen/CMakeFiles/ll_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/triton/CMakeFiles/ll_triton.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ll_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/ll_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/f2/CMakeFiles/ll_f2.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ll_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
