# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/f2_matrix_test[1]_include.cmake")
include("/root/repo/build/tests/f2_subspace_test[1]_include.cmake")
include("/root/repo/build/tests/linear_layout_test[1]_include.cmake")
include("/root/repo/build/tests/encodings_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/ir_engine_test[1]_include.cmake")
include("/root/repo/build/tests/legacy_test[1]_include.cmake")
include("/root/repo/build/tests/affine_layout_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
