file(REMOVE_RECURSE
  "CMakeFiles/layout_conversion.dir/layout_conversion.cpp.o"
  "CMakeFiles/layout_conversion.dir/layout_conversion.cpp.o.d"
  "layout_conversion"
  "layout_conversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
