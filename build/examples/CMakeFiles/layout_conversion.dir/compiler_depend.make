# Empty compiler generated dependencies file for layout_conversion.
# This may be replaced when dependencies are built.
