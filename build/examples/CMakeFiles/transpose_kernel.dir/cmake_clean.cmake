file(REMOVE_RECURSE
  "CMakeFiles/transpose_kernel.dir/transpose_kernel.cpp.o"
  "CMakeFiles/transpose_kernel.dir/transpose_kernel.cpp.o.d"
  "transpose_kernel"
  "transpose_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transpose_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
