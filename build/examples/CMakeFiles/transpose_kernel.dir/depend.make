# Empty dependencies file for transpose_kernel.
# This may be replaced when dependencies are built.
