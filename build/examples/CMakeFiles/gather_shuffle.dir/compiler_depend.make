# Empty compiler generated dependencies file for gather_shuffle.
# This may be replaced when dependencies are built.
