file(REMOVE_RECURSE
  "CMakeFiles/gather_shuffle.dir/gather_shuffle.cpp.o"
  "CMakeFiles/gather_shuffle.dir/gather_shuffle.cpp.o.d"
  "gather_shuffle"
  "gather_shuffle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gather_shuffle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
