file(REMOVE_RECURSE
  "CMakeFiles/layout_inspect.dir/layout_inspect.cpp.o"
  "CMakeFiles/layout_inspect.dir/layout_inspect.cpp.o.d"
  "layout_inspect"
  "layout_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
