# Empty dependencies file for layout_inspect.
# This may be replaced when dependencies are built.
