# Empty compiler generated dependencies file for mixed_precision_gemm.
# This may be replaced when dependencies are built.
