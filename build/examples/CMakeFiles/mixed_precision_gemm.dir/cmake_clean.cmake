file(REMOVE_RECURSE
  "CMakeFiles/mixed_precision_gemm.dir/mixed_precision_gemm.cpp.o"
  "CMakeFiles/mixed_precision_gemm.dir/mixed_precision_gemm.cpp.o.d"
  "mixed_precision_gemm"
  "mixed_precision_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_precision_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
