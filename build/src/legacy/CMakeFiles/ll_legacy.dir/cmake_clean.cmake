file(REMOVE_RECURSE
  "CMakeFiles/ll_legacy.dir/legacy.cpp.o"
  "CMakeFiles/ll_legacy.dir/legacy.cpp.o.d"
  "CMakeFiles/ll_legacy.dir/legacy_cost.cpp.o"
  "CMakeFiles/ll_legacy.dir/legacy_cost.cpp.o.d"
  "libll_legacy.a"
  "libll_legacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ll_legacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
