# Empty dependencies file for ll_legacy.
# This may be replaced when dependencies are built.
