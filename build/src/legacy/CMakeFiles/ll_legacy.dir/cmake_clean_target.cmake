file(REMOVE_RECURSE
  "libll_legacy.a"
)
