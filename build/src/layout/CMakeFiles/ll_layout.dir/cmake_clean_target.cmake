file(REMOVE_RECURSE
  "libll_layout.a"
)
