# Empty dependencies file for ll_layout.
# This may be replaced when dependencies are built.
