file(REMOVE_RECURSE
  "CMakeFiles/ll_layout.dir/affine_layout.cpp.o"
  "CMakeFiles/ll_layout.dir/affine_layout.cpp.o.d"
  "CMakeFiles/ll_layout.dir/linear_layout.cpp.o"
  "CMakeFiles/ll_layout.dir/linear_layout.cpp.o.d"
  "libll_layout.a"
  "libll_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ll_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
