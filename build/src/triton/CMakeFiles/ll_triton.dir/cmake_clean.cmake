file(REMOVE_RECURSE
  "CMakeFiles/ll_triton.dir/encodings.cpp.o"
  "CMakeFiles/ll_triton.dir/encodings.cpp.o.d"
  "libll_triton.a"
  "libll_triton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ll_triton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
