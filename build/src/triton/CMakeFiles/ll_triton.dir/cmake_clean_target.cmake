file(REMOVE_RECURSE
  "libll_triton.a"
)
