# Empty compiler generated dependencies file for ll_triton.
# This may be replaced when dependencies are built.
