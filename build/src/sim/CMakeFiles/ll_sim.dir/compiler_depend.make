# Empty compiler generated dependencies file for ll_sim.
# This may be replaced when dependencies are built.
