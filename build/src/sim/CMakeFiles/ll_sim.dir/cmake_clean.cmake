file(REMOVE_RECURSE
  "CMakeFiles/ll_sim.dir/gpu_spec.cpp.o"
  "CMakeFiles/ll_sim.dir/gpu_spec.cpp.o.d"
  "CMakeFiles/ll_sim.dir/memory_sim.cpp.o"
  "CMakeFiles/ll_sim.dir/memory_sim.cpp.o.d"
  "libll_sim.a"
  "libll_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ll_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
