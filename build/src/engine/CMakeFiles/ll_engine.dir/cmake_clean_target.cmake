file(REMOVE_RECURSE
  "libll_engine.a"
)
