file(REMOVE_RECURSE
  "CMakeFiles/ll_engine.dir/cost_model.cpp.o"
  "CMakeFiles/ll_engine.dir/cost_model.cpp.o.d"
  "CMakeFiles/ll_engine.dir/layout_engine.cpp.o"
  "CMakeFiles/ll_engine.dir/layout_engine.cpp.o.d"
  "CMakeFiles/ll_engine.dir/shape_transfer.cpp.o"
  "CMakeFiles/ll_engine.dir/shape_transfer.cpp.o.d"
  "libll_engine.a"
  "libll_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ll_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
