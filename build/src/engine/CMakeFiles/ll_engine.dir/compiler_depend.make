# Empty compiler generated dependencies file for ll_engine.
# This may be replaced when dependencies are built.
