file(REMOVE_RECURSE
  "CMakeFiles/ll_support.dir/diagnostics.cpp.o"
  "CMakeFiles/ll_support.dir/diagnostics.cpp.o.d"
  "libll_support.a"
  "libll_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ll_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
