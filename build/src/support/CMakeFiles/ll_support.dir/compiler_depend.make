# Empty compiler generated dependencies file for ll_support.
# This may be replaced when dependencies are built.
