file(REMOVE_RECURSE
  "libll_support.a"
)
