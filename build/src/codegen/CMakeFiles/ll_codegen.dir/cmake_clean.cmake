file(REMOVE_RECURSE
  "CMakeFiles/ll_codegen.dir/conversion.cpp.o"
  "CMakeFiles/ll_codegen.dir/conversion.cpp.o.d"
  "CMakeFiles/ll_codegen.dir/gather.cpp.o"
  "CMakeFiles/ll_codegen.dir/gather.cpp.o.d"
  "CMakeFiles/ll_codegen.dir/shared_exec.cpp.o"
  "CMakeFiles/ll_codegen.dir/shared_exec.cpp.o.d"
  "CMakeFiles/ll_codegen.dir/shuffle.cpp.o"
  "CMakeFiles/ll_codegen.dir/shuffle.cpp.o.d"
  "CMakeFiles/ll_codegen.dir/swizzle.cpp.o"
  "CMakeFiles/ll_codegen.dir/swizzle.cpp.o.d"
  "CMakeFiles/ll_codegen.dir/tiles.cpp.o"
  "CMakeFiles/ll_codegen.dir/tiles.cpp.o.d"
  "CMakeFiles/ll_codegen.dir/vectorize.cpp.o"
  "CMakeFiles/ll_codegen.dir/vectorize.cpp.o.d"
  "libll_codegen.a"
  "libll_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ll_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
