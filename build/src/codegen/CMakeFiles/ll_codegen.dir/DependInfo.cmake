
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/conversion.cpp" "src/codegen/CMakeFiles/ll_codegen.dir/conversion.cpp.o" "gcc" "src/codegen/CMakeFiles/ll_codegen.dir/conversion.cpp.o.d"
  "/root/repo/src/codegen/gather.cpp" "src/codegen/CMakeFiles/ll_codegen.dir/gather.cpp.o" "gcc" "src/codegen/CMakeFiles/ll_codegen.dir/gather.cpp.o.d"
  "/root/repo/src/codegen/shared_exec.cpp" "src/codegen/CMakeFiles/ll_codegen.dir/shared_exec.cpp.o" "gcc" "src/codegen/CMakeFiles/ll_codegen.dir/shared_exec.cpp.o.d"
  "/root/repo/src/codegen/shuffle.cpp" "src/codegen/CMakeFiles/ll_codegen.dir/shuffle.cpp.o" "gcc" "src/codegen/CMakeFiles/ll_codegen.dir/shuffle.cpp.o.d"
  "/root/repo/src/codegen/swizzle.cpp" "src/codegen/CMakeFiles/ll_codegen.dir/swizzle.cpp.o" "gcc" "src/codegen/CMakeFiles/ll_codegen.dir/swizzle.cpp.o.d"
  "/root/repo/src/codegen/tiles.cpp" "src/codegen/CMakeFiles/ll_codegen.dir/tiles.cpp.o" "gcc" "src/codegen/CMakeFiles/ll_codegen.dir/tiles.cpp.o.d"
  "/root/repo/src/codegen/vectorize.cpp" "src/codegen/CMakeFiles/ll_codegen.dir/vectorize.cpp.o" "gcc" "src/codegen/CMakeFiles/ll_codegen.dir/vectorize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/layout/CMakeFiles/ll_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ll_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/f2/CMakeFiles/ll_f2.dir/DependInfo.cmake"
  "/root/repo/build/src/triton/CMakeFiles/ll_triton.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ll_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
