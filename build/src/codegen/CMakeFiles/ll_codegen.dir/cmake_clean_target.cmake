file(REMOVE_RECURSE
  "libll_codegen.a"
)
