# Empty compiler generated dependencies file for ll_codegen.
# This may be replaced when dependencies are built.
