file(REMOVE_RECURSE
  "libll_f2.a"
)
