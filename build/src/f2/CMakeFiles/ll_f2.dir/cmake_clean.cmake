file(REMOVE_RECURSE
  "CMakeFiles/ll_f2.dir/matrix.cpp.o"
  "CMakeFiles/ll_f2.dir/matrix.cpp.o.d"
  "CMakeFiles/ll_f2.dir/subspace.cpp.o"
  "CMakeFiles/ll_f2.dir/subspace.cpp.o.d"
  "libll_f2.a"
  "libll_f2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ll_f2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
