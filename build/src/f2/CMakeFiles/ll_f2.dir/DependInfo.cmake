
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/f2/matrix.cpp" "src/f2/CMakeFiles/ll_f2.dir/matrix.cpp.o" "gcc" "src/f2/CMakeFiles/ll_f2.dir/matrix.cpp.o.d"
  "/root/repo/src/f2/subspace.cpp" "src/f2/CMakeFiles/ll_f2.dir/subspace.cpp.o" "gcc" "src/f2/CMakeFiles/ll_f2.dir/subspace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ll_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
