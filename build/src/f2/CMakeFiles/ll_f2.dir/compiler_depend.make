# Empty compiler generated dependencies file for ll_f2.
# This may be replaced when dependencies are built.
