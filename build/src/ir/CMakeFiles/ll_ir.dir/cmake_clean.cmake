file(REMOVE_RECURSE
  "CMakeFiles/ll_ir.dir/function.cpp.o"
  "CMakeFiles/ll_ir.dir/function.cpp.o.d"
  "CMakeFiles/ll_ir.dir/types.cpp.o"
  "CMakeFiles/ll_ir.dir/types.cpp.o.d"
  "libll_ir.a"
  "libll_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ll_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
