# Empty dependencies file for ll_ir.
# This may be replaced when dependencies are built.
