file(REMOVE_RECURSE
  "libll_ir.a"
)
