# Smoke-run the compilation service over the seed corpus: 4 threads,
# 4 repeat passes, shuffled, asserting the plan-cache hit rate the
# repeat passes must produce, then validate the BENCH_service.json it
# emits against the schema llstat enforces.
#
# Script arguments (via -D):
#   LLSERVE     path to the llserve binary
#   LLSTAT      path to the llstat binary
#   CORPUS_DIR  seed corpus directory
#   OUT_DIR     scratch dir for the emitted report

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

# 4 repeat passes over N cases: at most N misses, so the hit rate is
# at least 75% even if every case is distinct. Expect 70 to keep a
# margin for eviction noise while still proving the cache works.
execute_process(
    COMMAND ${CMAKE_COMMAND} -E env "LL_BENCH_JSON_DIR=${OUT_DIR}"
            "${LLSERVE}" --corpus "${CORPUS_DIR}"
            --threads 4 --repeat 4 --shuffle
            --expect-hit-rate 70
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "llserve exited with ${rc}")
endif()
if(NOT EXISTS "${OUT_DIR}/BENCH_service.json")
    message(FATAL_ERROR "llserve did not emit BENCH_service.json")
endif()

execute_process(COMMAND "${LLSTAT}" --validate-bench-json "${OUT_DIR}"
                RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "BENCH_service.json schema validation failed")
endif()
