/**
 * @file
 * llfuzz — differential fuzzer for layout-conversion lowering.
 *
 * Generates random conversion cases (src layout, dst layout, element
 * width, GPU spec), plans each with codegen::planConversion, executes
 * the plan, and checks it against the brute-force oracle: every element
 * must land in the register the destination layout demands, and every
 * shared-memory plan's measured bank-conflict wavefronts must equal the
 * analytic Lemma 9.4 numbers it was priced with.
 *
 * On failure the case is shrunk to a minimal reproducer, printed both as
 * a ready-to-paste GoogleTest regression test and in the corpus text
 * format, and the process exits nonzero.
 *
 * Usage:
 *   llfuzz [--seed N] [--iters M] [--max-rank R] [--emit-corpus DIR]
 *          [--replay FILE] [--inject-bug] [--failpoint-rate P]
 *          [--verbose]
 *
 * --inject-bug runs the harness self-test: a swizzle-aliasing bug is
 * deliberately injected into a shared-memory plan; the oracle must catch
 * it and the shrinker must reduce it to a tensor of at most 32 elements.
 *
 * --failpoint-rate P activates each planner failpoint site independently
 * with probability P on every generated case, forcing random walks down
 * the fallback ladder; the oracle then checks that whatever rung the
 * planner lands on still routes every element correctly. The active set
 * is recorded in the case (and preserved through shrinking), so
 * reproducers replay the exact same injected failures.
 */

#include <cstring>
#include <iostream>
#include <map>
#include <random>
#include <sstream>
#include <string>

#include "check/case_io.h"
#include "check/oracle.h"
#include "check/shrink.h"
#include "codegen/conversion.h"

using namespace ll;

namespace {

struct Options
{
    uint32_t seed = 1;
    int iters = 500;
    int maxRank = 3;
    std::string emitCorpusDir;
    std::string replayFile;
    bool injectBug = false;
    double failpointRate = 0.0;
    bool verbose = false;
};

void
usage()
{
    std::cerr
        << "usage: llfuzz [--seed N] [--iters M] [--max-rank R]\n"
           "              [--emit-corpus DIR] [--replay FILE]\n"
           "              [--inject-bug] [--failpoint-rate P]\n"
           "              [--verbose]\n";
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto needValue = [&](const char *name) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "llfuzz: " << name << " needs a value\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--seed") {
            const char *v = needValue("--seed");
            if (!v)
                return false;
            opt.seed = static_cast<uint32_t>(std::stoul(v));
        } else if (arg == "--iters") {
            const char *v = needValue("--iters");
            if (!v)
                return false;
            opt.iters = std::stoi(v);
        } else if (arg == "--max-rank") {
            const char *v = needValue("--max-rank");
            if (!v)
                return false;
            opt.maxRank = std::stoi(v);
        } else if (arg == "--emit-corpus") {
            const char *v = needValue("--emit-corpus");
            if (!v)
                return false;
            opt.emitCorpusDir = v;
        } else if (arg == "--replay") {
            const char *v = needValue("--replay");
            if (!v)
                return false;
            opt.replayFile = v;
        } else if (arg == "--inject-bug") {
            opt.injectBug = true;
        } else if (arg == "--failpoint-rate") {
            const char *v = needValue("--failpoint-rate");
            if (!v)
                return false;
            opt.failpointRate = std::stod(v);
            if (opt.failpointRate < 0.0 || opt.failpointRate > 1.0) {
                std::cerr << "llfuzz: --failpoint-rate must be in "
                             "[0, 1]\n";
                return false;
            }
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            std::cerr << "llfuzz: unknown option " << arg << "\n";
            usage();
            return false;
        }
    }
    return true;
}

/** Print the failure, shrink it, print the reproducer; returns 1. */
int
reportFailure(const check::ConversionCase &c,
              const check::OracleReport &report,
              const check::CaseChecker &checker)
{
    std::cerr << "FAILURE: " << c.summary << "\n"
              << "  " << report.toString() << "\n"
              << "shrinking...\n";
    auto shrunk = check::shrinkCase(c, checker);
    std::cerr << "shrunk in " << shrunk.steps << " steps to "
              << check::caseElements(shrunk.minimized)
              << " elements\n\n";
    if (!shrunk.exceptionMessage.empty())
        std::cerr << "minimized case throws: " << shrunk.exceptionMessage
                  << "\n\n";
    else
        std::cerr << "minimized report: " << shrunk.report.toString()
                  << "\n\n";
    std::cerr << "--- regression test "
                 "------------------------------------\n"
              << check::emitRegressionTest(shrunk.minimized, "Shrunk")
              << "--- corpus case "
                 "----------------------------------------\n";
    check::writeCase(std::cerr, shrunk.minimized);
    return 1;
}

int
runInjectBugSelfTest(const Options &opt)
{
    // Find a case the planner lowers through shared memory, corrupt the
    // swizzle, and demand the harness catches and minimizes it.
    std::mt19937 rng(opt.seed);
    check::GenOptions gen;
    gen.maxRank = opt.maxRank;
    auto checker = [](const check::ConversionCase &cc) {
        return check::checkConversionCase(cc,
                                          check::injectSwizzleAliasBug);
    };
    for (int i = 0; i < 1000; ++i) {
        auto c = check::randomConversionCase(rng, gen);
        auto spec = c.spec();
        codegen::ConversionPlan plan;
        try {
            plan = codegen::planConversion(c.src, c.dst, c.elemBytes,
                                           spec);
        } catch (const std::exception &e) {
            std::cerr << "planner threw on " << c.summary << ": "
                      << e.what() << "\n";
            return 1;
        }
        if (plan.kind != codegen::ConversionKind::SharedMemory)
            continue;

        if (!check::injectSwizzleAliasBug(plan)) {
            std::cerr << "could not inject a bug into " << c.summary
                      << "\n";
            return 1;
        }
        auto report =
            check::checkPlan(plan, c.src, c.dst, c.elemBytes, spec);
        if (report.ok()) {
            std::cerr << "MISSED: injected swizzle bug not caught on "
                      << c.summary << "\n"
                      << "  " << report.toString() << "\n";
            return 1;
        }
        auto shrunk = check::shrinkCase(c, checker);
        int64_t elems = check::caseElements(shrunk.minimized);
        std::cout << "injected bug caught on " << c.summary << " ("
                  << report.mismatches << " mismatches), shrunk in "
                  << shrunk.steps << " steps to " << elems
                  << " elements\n";
        if (opt.verbose) {
            std::cout << check::emitRegressionTest(shrunk.minimized,
                                                   "Injected");
        }
        if (elems > 32) {
            std::cerr << "shrinker left " << elems
                      << " elements (want <= 32)\n";
            return 1;
        }
        std::cout << "inject-bug self-test passed\n";
        return 0;
    }
    std::cerr << "no shared-memory plan found to inject into\n";
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    auto checker = [](const check::ConversionCase &cc) {
        return check::checkConversionCase(cc);
    };

    if (opt.injectBug)
        return runInjectBugSelfTest(opt);

    if (!opt.replayFile.empty()) {
        check::ConversionCase c;
        try {
            c = check::readCaseFile(opt.replayFile);
        } catch (const std::exception &e) {
            std::cerr << "llfuzz: " << e.what() << "\n";
            return 2;
        }
        auto report = checker(c);
        std::cout << (c.summary.empty() ? opt.replayFile : c.summary)
                  << ": " << report.toString() << "\n";
        if (!report.ok())
            return reportFailure(c, report, checker);
        return 0;
    }

    std::mt19937 rng(opt.seed);
    check::GenOptions gen;
    gen.maxRank = opt.maxRank;
    const auto failpointSites = codegen::plannerFailpointSites();
    std::bernoulli_distribution failpointCoin(opt.failpointRate);
    std::map<std::string, int> kindCounts;
    int64_t casesWithFailpoints = 0;
    int64_t corpusWritten = 0;
    for (int iter = 0; iter < opt.iters; ++iter) {
        auto c = check::randomConversionCase(rng, gen);
        if (opt.failpointRate > 0.0) {
            for (const auto &site : failpointSites) {
                if (failpointCoin(rng))
                    c.failpoints.push_back(site);
            }
            if (!c.failpoints.empty()) {
                ++casesWithFailpoints;
                std::ostringstream fs;
                fs << c.summary << " +failpoints{";
                for (size_t s = 0; s < c.failpoints.size(); ++s)
                    fs << (s ? "," : "") << c.failpoints[s];
                fs << "}";
                c.summary = fs.str();
            }
        }
        check::OracleReport report;
        try {
            report = checker(c);
        } catch (const std::exception &e) {
            std::cerr << "EXCEPTION on " << c.summary << ": " << e.what()
                      << "\n";
            return reportFailure(c, report, checker);
        }
        ++kindCounts[codegen::toString(report.kind)];
        if (opt.verbose) {
            std::cout << "[" << iter << "] " << c.summary << ": "
                      << report.toString() << "\n";
        }
        if (!report.ok())
            return reportFailure(c, report, checker);
        if (!opt.emitCorpusDir.empty()) {
            std::ostringstream name;
            name << opt.emitCorpusDir << "/seed" << opt.seed << "_case"
                 << iter << ".txt";
            check::writeCaseFile(name.str(), c);
            ++corpusWritten;
        }
    }

    std::cout << "llfuzz: " << opt.iters
              << " cases checked, 0 failures (seed " << opt.seed
              << ")\n";
    for (const auto &[kind, count] : kindCounts)
        std::cout << "  " << kind << ": " << count << "\n";
    if (opt.failpointRate > 0.0) {
        std::cout << "  cases with injected failpoints: "
                  << casesWithFailpoints << " (rate "
                  << opt.failpointRate << ")\n";
    }
    if (corpusWritten)
        std::cout << "  corpus files written: " << corpusWritten << "\n";
    return 0;
}
