/**
 * @file
 * llfuzz — differential fuzzer for layout-conversion lowering.
 *
 * Generates random conversion cases (src layout, dst layout, element
 * width, GPU spec), plans each with codegen::planConversion, executes
 * the plan, and checks it against the brute-force oracle: every element
 * must land in the register the destination layout demands, and every
 * shared-memory plan's measured bank-conflict wavefronts must equal the
 * analytic Lemma 9.4 numbers it was priced with.
 *
 * On failure the case is shrunk to a minimal reproducer, printed both as
 * a ready-to-paste GoogleTest regression test and in the corpus text
 * format, and the process exits nonzero.
 *
 * Usage:
 *   llfuzz [--seed N] [--iters M] [--max-rank R] [--emit-corpus DIR]
 *          [--replay FILE] [--inject-bug] [--failpoint-rate P]
 *          [--diff-f2] [--verbose]
 *
 * --inject-bug runs the harness self-test: a swizzle-aliasing bug is
 * deliberately injected into a shared-memory plan; the oracle must catch
 * it and the shrinker must reduce it to a tensor of at most 32 elements.
 *
 * --failpoint-rate P activates each planner failpoint site independently
 * with probability P on every generated case, forcing random walks down
 * the fallback ladder; the oracle then checks that whatever rung the
 * planner lands on still routes every element correctly. The active set
 * is recorded in the case (and preserved through shrinking), so
 * reproducers replay the exact same injected failures.
 *
 * --failpoint-coverage runs coverage-guided fault injection over the
 * combined planner + execution site pool: each iteration picks one site
 * with probability inversely proportional to its hit count, forces it
 * (planner sites for a whole random case, execution sites one-shot
 * against a deterministic probe whose plan reaches that executor), and
 * demands the engine-style demotion survives with a bit-exact oracle
 * verdict. The run fails unless every pooled site was hit at least once
 * within the --iters budget.
 *
 * --failpoint-pairs forces a random *pair* per iteration: one executor
 * site one-shot (to trigger a demotion) plus one planner site held
 * active (so the demoted re-plan may fail its next rung too, or —
 * when the pair knocks out the terminal scalar rung — fail planning
 * outright, the demote-then-plan-fail path the engine downgrades
 * through). Unlike --failpoint-coverage, the planner pool here
 * includes "plan.scalar". The run demands no exception ever escapes,
 * every surviving demotion is oracle-clean, and that the budget
 * reached at least one demotion and at least one demote-then-plan-fail
 * terminal.
 *
 * --diff-f2 fuzzes the word-parallel F2 core against its scalar
 * references: every case is planned twice (fast paths, then
 * refmode::Scoped reference paths) and any divergence in describePlan
 * output or enumerated wavefront totals fails the run and is shrunk to
 * a minimal reproducer.
 *
 * --diff-cute fuzzes the CuteLayout bridge and the non-pow2 admission
 * path. Each iteration (a) generates a random nested (shape,stride)
 * layout and checks the bridge differentially — a linearizable layout
 * must evaluate identically through LinearLayout::applyFlat and
 * round-trip fromLinear -> toLinear bit-for-bit, and every rejected
 * pow2-extent layout must carry an explicit XOR-linearity witness —
 * and (b) generates a random well-formed conversion request, plans it
 * with cute::tryPlanCuteConversion, executes it, and audits it against
 * the tagged-buffer oracle. Failures shrink to a minimal layout or a
 * minimal `.cute` reproducer.
 *
 * --diff-synth fuzzes the whole-kernel layout synthesis (src/synth):
 * each iteration builds a random but always-valid mini-IR graph and
 * runs the layout engine twice, synth-off and synth-on. Both runs must
 * complete, every surviving ConvertLayout in *both* functions must
 * oracle-verify end to end via checkCaseWithDemotion, and the
 * synthesized function's modeled kernel cost must not exceed the
 * default's (the never-worse guarantee). A divergence is shrunk by
 * regenerating the graph from the same seed with a decreasing op
 * budget and reporting the smallest budget that still fails.
 */

#include <cstring>
#include <iostream>
#include <map>
#include <random>
#include <sstream>
#include <string>

#include "check/case_io.h"
#include "check/cute_check.h"
#include "check/oracle.h"
#include "check/shrink.h"
#include "codegen/conversion.h"
#include "codegen/gather.h"
#include "codegen/swizzle.h"
#include "cute/bridge.h"
#include "engine/cost_model.h"
#include "engine/layout_engine.h"
#include "service/admission.h"
#include "service/compile_service.h"
#include "service/singleflight.h"
#include "support/failpoint.h"
#include "support/refmode.h"

using namespace ll;

namespace {

struct Options
{
    uint32_t seed = 1;
    int iters = 500;
    int maxRank = 3;
    std::string emitCorpusDir;
    std::string replayFile;
    bool injectBug = false;
    double failpointRate = 0.0;
    bool failpointCoverage = false;
    bool failpointPairs = false;
    bool diffF2 = false;
    bool diffCute = false;
    bool diffSynth = false;
    bool verbose = false;
};

void
usage()
{
    std::cerr
        << "usage: llfuzz [--seed N] [--iters M] [--max-rank R]\n"
           "              [--emit-corpus DIR] [--replay FILE]\n"
           "              [--inject-bug] [--failpoint-rate P]\n"
           "              [--failpoint-coverage] [--failpoint-pairs]\n"
           "              [--diff-f2] [--diff-cute] [--diff-synth]\n"
           "              [--verbose]\n";
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto needValue = [&](const char *name) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "llfuzz: " << name << " needs a value\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--seed") {
            const char *v = needValue("--seed");
            if (!v)
                return false;
            opt.seed = static_cast<uint32_t>(std::stoul(v));
        } else if (arg == "--iters") {
            const char *v = needValue("--iters");
            if (!v)
                return false;
            opt.iters = std::stoi(v);
        } else if (arg == "--max-rank") {
            const char *v = needValue("--max-rank");
            if (!v)
                return false;
            opt.maxRank = std::stoi(v);
        } else if (arg == "--emit-corpus") {
            const char *v = needValue("--emit-corpus");
            if (!v)
                return false;
            opt.emitCorpusDir = v;
        } else if (arg == "--replay") {
            const char *v = needValue("--replay");
            if (!v)
                return false;
            opt.replayFile = v;
        } else if (arg == "--inject-bug") {
            opt.injectBug = true;
        } else if (arg == "--failpoint-coverage") {
            opt.failpointCoverage = true;
        } else if (arg == "--failpoint-pairs") {
            opt.failpointPairs = true;
        } else if (arg == "--diff-f2") {
            opt.diffF2 = true;
        } else if (arg == "--diff-cute") {
            opt.diffCute = true;
        } else if (arg == "--diff-synth") {
            opt.diffSynth = true;
        } else if (arg == "--failpoint-rate") {
            const char *v = needValue("--failpoint-rate");
            if (!v)
                return false;
            opt.failpointRate = std::stod(v);
            if (opt.failpointRate < 0.0 || opt.failpointRate > 1.0) {
                std::cerr << "llfuzz: --failpoint-rate must be in "
                             "[0, 1]\n";
                return false;
            }
        } else if (arg == "--verbose") {
            opt.verbose = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            std::cerr << "llfuzz: unknown option " << arg << "\n";
            usage();
            return false;
        }
    }
    return true;
}

/** Print the failure, shrink it, print the reproducer; returns 1. */
int
reportFailure(const check::ConversionCase &c,
              const check::OracleReport &report,
              const check::CaseChecker &checker)
{
    std::cerr << "FAILURE: " << c.summary << "\n"
              << "  " << report.toString() << "\n"
              << "shrinking...\n";
    auto shrunk = check::shrinkCase(c, checker);
    std::cerr << "shrunk in " << shrunk.steps << " steps to "
              << check::caseElements(shrunk.minimized)
              << " elements\n\n";
    if (!shrunk.exceptionMessage.empty())
        std::cerr << "minimized case throws: " << shrunk.exceptionMessage
                  << "\n\n";
    else
        std::cerr << "minimized report: " << shrunk.report.toString()
                  << "\n\n";
    std::cerr << "--- regression test "
                 "------------------------------------\n"
              << check::emitRegressionTest(shrunk.minimized, "Shrunk")
              << "--- corpus case "
                 "----------------------------------------\n";
    check::writeCase(std::cerr, shrunk.minimized);
    return 1;
}

int
runInjectBugSelfTest(const Options &opt)
{
    // Find a case the planner lowers through shared memory, corrupt the
    // swizzle, and demand the harness catches and minimizes it.
    std::mt19937 rng(opt.seed);
    check::GenOptions gen;
    gen.maxRank = opt.maxRank;
    auto checker = [](const check::ConversionCase &cc) {
        return check::checkConversionCase(cc,
                                          check::injectSwizzleAliasBug);
    };
    for (int i = 0; i < 1000; ++i) {
        auto c = check::randomConversionCase(rng, gen);
        auto spec = c.spec();
        codegen::ConversionPlan plan;
        try {
            plan = codegen::planConversion(c.src, c.dst, c.elemBytes,
                                           spec);
        } catch (const std::exception &e) {
            std::cerr << "planner threw on " << c.summary << ": "
                      << e.what() << "\n";
            return 1;
        }
        if (plan.kind != codegen::ConversionKind::SharedMemory)
            continue;

        if (!check::injectSwizzleAliasBug(plan)) {
            std::cerr << "could not inject a bug into " << c.summary
                      << "\n";
            return 1;
        }
        auto report =
            check::checkPlan(plan, c.src, c.dst, c.elemBytes, spec);
        if (report.ok()) {
            std::cerr << "MISSED: injected swizzle bug not caught on "
                      << c.summary << "\n"
                      << "  " << report.toString() << "\n";
            return 1;
        }
        auto shrunk = check::shrinkCase(c, checker);
        int64_t elems = check::caseElements(shrunk.minimized);
        std::cout << "injected bug caught on " << c.summary << " ("
                  << report.mismatches << " mismatches), shrunk in "
                  << shrunk.steps << " steps to " << elems
                  << " elements\n";
        if (opt.verbose) {
            std::cout << check::emitRegressionTest(shrunk.minimized,
                                                   "Injected");
        }
        if (elems > 32) {
            std::cerr << "shrinker left " << elems
                      << " elements (want <= 32)\n";
            return 1;
        }
        std::cout << "inject-bug self-test passed\n";
        return 0;
    }
    std::cerr << "no shared-memory plan found to inject into\n";
    return 1;
}

/** Blocked-encoding shorthand for the deterministic coverage probes. */
LinearLayout
coverageBlocked(const triton::Shape &spt, const triton::Shape &tpw,
                const triton::Shape &wpc, const std::vector<int32_t> &order,
                const triton::Shape &shape)
{
    triton::BlockedEncoding enc;
    enc.sizePerThread = spt;
    enc.threadsPerWarp = tpw;
    enc.warpsPerCta = wpc;
    enc.order = order;
    return enc.toLinearLayout(shape);
}

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

/**
 * Force one exec.gather.* site against a fixed warp-local gather, then
 * rerun clean: the forced run must fail through the site's error path
 * and the clean run must gather correctly (and, as a side effect,
 * evaluate every gather guard, bumping its hit count).
 */
bool
runGatherProbe(const std::string &site)
{
    auto spec = sim::GpuSpec::gh200();
    auto l = coverageBlocked({1, 8}, {32, 1}, {1, 1}, {1, 0}, {32, 8});
    auto plan = codegen::planGather(l, 1, spec);
    if (!plan.has_value()) {
        std::cerr << "gather probe failed to plan\n";
        return false;
    }
    std::vector<std::vector<uint64_t>> regs(
        32, std::vector<uint64_t>(static_cast<size_t>(plan->numRegs)));
    std::vector<std::vector<int32_t>> idx(
        32, std::vector<int32_t>(static_cast<size_t>(plan->numRegs)));
    for (int lane = 0; lane < 32; ++lane) {
        for (int reg = 0; reg < plan->numRegs; ++reg) {
            regs[static_cast<size_t>(lane)][static_cast<size_t>(reg)] =
                static_cast<uint64_t>(lane * plan->numRegs + reg);
            idx[static_cast<size_t>(lane)][static_cast<size_t>(reg)] =
                reg; // identity gather along axis 1
        }
    }
    failpoint::activate(site, 1);
    auto forced = codegen::executeGather(*plan, l, 0, regs, idx);
    failpoint::deactivate(site);
    if (forced.ok()) {
        std::cerr << "forced gather failpoint " << site
                  << " did not fire\n";
        return false;
    }
    auto clean = codegen::executeGather(*plan, l, 0, regs, idx);
    if (!clean.ok()) {
        std::cerr << "clean gather probe failed: "
                  << clean.diag().toString() << "\n";
        return false;
    }
    for (int lane = 0; lane < 32; ++lane) {
        for (int reg = 0; reg < plan->numRegs; ++reg) {
            if ((*clean)[static_cast<size_t>(lane)]
                        [static_cast<size_t>(reg)] !=
                regs[static_cast<size_t>(lane)]
                    [static_cast<size_t>(reg)]) {
                std::cerr << "identity gather misrouted an element\n";
                return false;
            }
        }
    }
    return true;
}

/**
 * Force one svc.* site against a deterministic single-conversion
 * service drill, then rerun clean: the forced run must resolve through
 * the site's degraded-but-definite outcome (shed, failed leader,
 * deadline-exceeded, burned retry) and the clean run must plan.
 */
bool
runServiceProbe(const std::string &site)
{
    auto spec = sim::GpuSpec::gh200();
    auto src = coverageBlocked({1, 4}, {8, 4}, {2, 2}, {1, 0}, {16, 64});
    auto dst = coverageBlocked({4, 1}, {2, 16}, {2, 2}, {1, 0}, {16, 64});

    if (site == "svc.admit") {
        service::AdmissionQueue queue(
            {2, service::AdmissionPolicy::ShedNewest});
        std::vector<service::ServerJob> shed;
        failpoint::activate(site, 1);
        const auto forced = queue.push(service::ServerJob{}, shed);
        failpoint::deactivate(site);
        if (forced != service::AdmissionQueue::PushResult::Shed) {
            std::cerr << "forced svc.admit did not shed\n";
            return false;
        }
        if (queue.stats().shedFailpoint != 1) {
            std::cerr << "svc.admit shed not attributed to the "
                         "failpoint\n";
            return false;
        }
        const auto clean = queue.push(service::ServerJob{}, shed);
        service::ServerJob out;
        if (clean != service::AdmissionQueue::PushResult::Admitted ||
            !queue.pop(out)) {
            std::cerr << "clean admission probe failed\n";
            return false;
        }
        queue.close();
        return true;
    }

    if (site == "svc.singleflight.leader") {
        service::PlanCache cache{service::PlanCache::Config{}};
        service::Singleflight flights;
        failpoint::activate(site, 1);
        const auto forced = service::serveConversionCoalesced(
            &cache, &flights, src, dst, 2, spec);
        failpoint::deactivate(site);
        if (forced.outcome.planned() || forced.outcome.error.empty()) {
            std::cerr << "forced svc.singleflight.leader did not fail "
                         "the leader\n";
            return false;
        }
        if (cache.size() != 0) {
            std::cerr << "leader failpoint failure was cached\n";
            return false;
        }
        const auto clean = service::serveConversionCoalesced(
            &cache, &flights, src, dst, 2, spec);
        if (!clean.outcome.planned()) {
            std::cerr << "clean singleflight probe failed: "
                      << clean.outcome.error << "\n";
            return false;
        }
        return true;
    }

    // Server-loop sites: a one-arrival serve() through CompileService.
    auto conv = std::make_shared<service::ConversionRequest>();
    conv->src = src;
    conv->dst = dst;
    conv->elemBytes = 2;
    conv->spec = spec;
    service::CompileRequest req;
    req.name = "svc.probe";
    req.conversion = std::move(conv);
    const std::vector<service::CompileRequest> stream{req};

    service::PlanCache cache{service::PlanCache::Config{}};
    service::CompileService::Options so;
    so.threads = 1;
    so.cache = &cache;
    service::CompileService svc{so};
    service::CompileService::ServerConfig cfg;
    cfg.ratePerSec = 1e5;
    cfg.durationSec = 0.01;
    cfg.maxRequests = 1;
    cfg.seed = 7;

    if (site == "svc.queue.timeout") {
        failpoint::activate(site, 1);
        const auto forced = svc.serve(stream, cfg);
        failpoint::deactivate(site);
        if (forced.deadlineExceeded != 1) {
            std::cerr << "forced svc.queue.timeout did not expire the "
                         "queued request\n";
            return false;
        }
        const auto clean = svc.serve(stream, cfg);
        if (clean.planned != 1) {
            std::cerr << "clean queue-timeout probe failed\n";
            return false;
        }
        return true;
    }

    if (site == "svc.retry") {
        cfg.retryBudget = 2;
        cfg.retryBackoffMs = 0.1;
        // Transient first attempt (failed leader), a burned first
        // retry (svc.retry), then the second retry plans clean.
        failpoint::activate("svc.singleflight.leader", 1);
        failpoint::activate("svc.retry", 1);
        const auto forced = svc.serve(stream, cfg);
        failpoint::deactivate("svc.singleflight.leader");
        failpoint::deactivate("svc.retry");
        if (forced.planned != 1 || forced.retries != 2) {
            std::cerr << "forced svc.retry drill wanted planned after "
                         "2 retries, saw planned="
                      << forced.planned
                      << " retries=" << forced.retries << "\n";
            return false;
        }
        return true;
    }

    std::cerr << "no probe for service site " << site << "\n";
    return false;
}

int
runFailpointCoverage(const Options &opt)
{
    failpoint::clearAll();
    std::mt19937 rng(opt.seed);
    check::GenOptions gen;
    gen.maxRank = opt.maxRank;

    auto pool = codegen::plannerFailpointSites();
    auto execSites = codegen::executionFailpointSites();
    pool.insert(pool.end(), execSites.begin(), execSites.end());
    auto svcSites = service::serviceFailpointSites();
    pool.insert(pool.end(), svcSites.begin(), svcSites.end());

    // Deterministic probes whose plans reach each executor family: the
    // forced exec site is then guaranteed to be evaluated (and fire).
    check::ConversionCase shuffleCase;
    shuffleCase.src =
        coverageBlocked({1, 4}, {8, 4}, {2, 2}, {1, 0}, {16, 64});
    shuffleCase.dst =
        coverageBlocked({4, 1}, {2, 16}, {2, 2}, {1, 0}, {16, 64});
    shuffleCase.summary = "coverage shuffle probe";
    check::ConversionCase sharedCase;
    sharedCase.src = shuffleCase.src;
    sharedCase.dst =
        coverageBlocked({1, 4}, {8, 4}, {4, 1}, {1, 0}, {16, 64});
    sharedCase.summary = "coverage shared probe";

    int64_t demotions = 0;
    for (int iter = 0; iter < opt.iters; ++iter) {
        // Coverage guidance: select inversely to how often each site's
        // guard has been evaluated so far.
        std::vector<double> weights;
        weights.reserve(pool.size());
        for (const auto &s : pool)
            weights.push_back(
                1.0 / (1.0 + static_cast<double>(failpoint::hitCount(s))));
        std::discrete_distribution<size_t> pick(weights.begin(),
                                                weights.end());
        const std::string site = pool[pick(rng)];
        if (opt.verbose)
            std::cout << "[" << iter << "] forcing " << site << "\n";

        if (startsWith(site, "svc.")) {
            if (!runServiceProbe(site))
                return 1;
        } else if (startsWith(site, "exec.gather.")) {
            if (!runGatherProbe(site))
                return 1;
        } else if (startsWith(site, "exec.")) {
            const auto &c = startsWith(site, "exec.shuffle.")
                                ? shuffleCase
                                : sharedCase;
            failpoint::activate(site, 1);
            check::DemotionReport dr;
            try {
                dr = check::checkCaseWithDemotion(c);
            } catch (const std::exception &e) {
                failpoint::deactivate(site);
                std::cerr << "EXCEPTION forcing " << site << " on "
                          << c.summary << ": " << e.what() << "\n";
                return 1;
            }
            failpoint::deactivate(site);
            if (dr.demotions < 1) {
                std::cerr << "forced exec failpoint " << site
                          << " did not trigger a demotion on "
                          << c.summary << "\n";
                return 1;
            }
            if (!dr.survived) {
                std::cerr << "demotion did not survive forcing " << site
                          << " on " << c.summary << "\n";
                for (const auto &n : dr.notes)
                    std::cerr << "  " << n << "\n";
                return 1;
            }
            if (!dr.report.ok()) {
                std::cerr << "demoted plan failed the oracle after "
                          << site << " on " << c.summary << ":\n  "
                          << dr.report.toString() << "\n";
                return 1;
            }
            demotions += dr.demotions;
        } else {
            auto c = check::randomConversionCase(rng, gen);
            c.failpoints.push_back(site);
            c.summary += " +failpoints{" + site + "}";
            check::OracleReport report;
            try {
                report = check::checkConversionCase(c);
            } catch (const std::exception &e) {
                std::cerr << "EXCEPTION on " << c.summary << ": "
                          << e.what() << "\n";
                return 1;
            }
            if (!report.ok()) {
                auto checker = [](const check::ConversionCase &cc) {
                    return check::checkConversionCase(cc);
                };
                return reportFailure(c, report, checker);
            }
        }
    }

    std::vector<std::string> missed;
    for (const auto &s : pool) {
        if (failpoint::hitCount(s) == 0)
            missed.push_back(s);
    }
    if (!missed.empty()) {
        std::cerr << "llfuzz: " << missed.size()
                  << " failpoint sites never hit within " << opt.iters
                  << " iterations:\n";
        for (const auto &s : missed)
            std::cerr << "  " << s << "\n";
        return 1;
    }
    std::cout << "llfuzz: failpoint coverage " << pool.size() << "/"
              << pool.size() << " sites hit over " << opt.iters
              << " cases, " << demotions
              << " execution-triggered demotions (seed " << opt.seed
              << ")\n";
    return 0;
}

/**
 * Force random (planner, executor) failpoint pairs against the
 * deterministic probes: the executor site (one- or two-shot) triggers
 * execution failures and demotions, while the held planner site
 * narrows where each demoted re-plan may land. The pool deliberately
 * includes "plan.scalar" — pairing it with a two-shot shared executor
 * fault walks SharedMemory -> SharedPadded -> (re-plan, terminal rung
 * knocked out) -> plan failure, the demote-then-plan-fail path the
 * engine downgrades to convert:unplanned. A deterministic probe of
 * exactly that pair runs after the random sweep so the terminal path
 * is exercised on every run regardless of what the sweep drew.
 */
int
runFailpointPairs(const Options &opt)
{
    failpoint::clearAll();
    std::mt19937 rng(opt.seed);

    auto plannerPool = codegen::plannerFailpointSites();
    plannerPool.push_back("plan.scalar");
    std::vector<std::string> execPool;
    for (const auto &s : codegen::executionFailpointSites()) {
        // Gather executors are not on the conversion path; pairing
        // them with a planner site can never demote a conversion.
        if (!startsWith(s, "exec.gather."))
            execPool.push_back(s);
    }

    check::ConversionCase shuffleCase;
    shuffleCase.src =
        coverageBlocked({1, 4}, {8, 4}, {2, 2}, {1, 0}, {16, 64});
    shuffleCase.dst =
        coverageBlocked({4, 1}, {2, 16}, {2, 2}, {1, 0}, {16, 64});
    shuffleCase.summary = "pairs shuffle probe";
    check::ConversionCase sharedCase;
    sharedCase.src = shuffleCase.src;
    sharedCase.dst =
        coverageBlocked({1, 4}, {8, 4}, {4, 1}, {1, 0}, {16, 64});
    sharedCase.summary = "pairs shared probe";

    int64_t demotions = 0;
    int64_t terminals = 0; ///< demote-then-plan-fail (or terminal-rung)
    int64_t survivals = 0;

    auto runPair = [&](const std::string &planSite,
                       const std::string &execSite,
                       int64_t execShots) -> bool {
        const auto &c = startsWith(execSite, "exec.shuffle.")
                            ? shuffleCase
                            : sharedCase;
        check::DemotionReport dr;
        try {
            failpoint::Scoped planGuard(planSite);
            failpoint::Scoped execGuard(execSite, execShots);
            dr = check::checkCaseWithDemotion(c);
        } catch (const std::exception &e) {
            std::cerr << "EXCEPTION forcing pair {" << planSite << ", "
                      << execSite << " x" << execShots << "} on "
                      << c.summary << ": " << e.what() << "\n";
            return false;
        }
        demotions += dr.demotions;
        if (!dr.survived) {
            // The engine-survival outcome: the op would be tagged
            // convert:unplanned and the engine carries on. Reaching it
            // here must not corrupt anything, so just count it.
            ++terminals;
            return true;
        }
        ++survivals;
        if (!dr.report.ok()) {
            std::cerr << "demoted plan failed the oracle under pair {"
                      << planSite << ", " << execSite << " x"
                      << execShots << "} on " << c.summary << ":\n  "
                      << dr.report.toString() << "\n";
            for (const auto &n : dr.notes)
                std::cerr << "  " << n << "\n";
            return false;
        }
        return true;
    };

    std::uniform_int_distribution<size_t> pickPlan(
        0, plannerPool.size() - 1);
    std::uniform_int_distribution<size_t> pickExec(0,
                                                   execPool.size() - 1);
    std::uniform_int_distribution<int64_t> pickShots(1, 2);
    for (int iter = 0; iter < opt.iters; ++iter) {
        const std::string planSite = plannerPool[pickPlan(rng)];
        const std::string execSite = execPool[pickExec(rng)];
        const int64_t shots = pickShots(rng);
        if (opt.verbose)
            std::cout << "[" << iter << "] pair {" << planSite << ", "
                      << execSite << " x" << shots << "}\n";
        if (!runPair(planSite, execSite, shots))
            return 1;
    }

    const int64_t terminalsBefore = terminals;
    if (!runPair("plan.scalar", "exec.shared.alloc", 2))
        return 1;
    if (terminals == terminalsBefore) {
        std::cerr << "llfuzz: deterministic demote-then-plan-fail "
                     "probe did not reach a terminal plan failure\n";
        return 1;
    }
    if (demotions < 1) {
        std::cerr << "llfuzz: failpoint pairs triggered no "
                     "execution-triggered demotion\n";
        return 1;
    }

    std::cout << "llfuzz: failpoint pairs: " << opt.iters
              << " random pairs (+1 terminal probe), " << demotions
              << " demotions, " << survivals
              << " oracle-clean survivals, " << terminals
              << " demote-then-plan-fail terminals (seed " << opt.seed
              << ")\n";
    return 0;
}

} // namespace

/**
 * --diff-f2: differential fuzzing of the word-parallel F2 core. Every
 * random case is planned twice — once on the fast word-parallel paths
 * and once entirely on the scalar reference paths (refmode::Scoped) —
 * and any divergence in describePlan output (plan kind, parameters,
 * FNV schedule/basis digests) or in the enumerated wavefront totals of
 * a shared plan is a failure, shrunk with the standard case shrinker.
 */
int
runDiffF2(const Options &opt)
{
    auto diffChecker = [](const check::ConversionCase &c) {
        check::OracleReport report;
        auto spec = c.spec();
        failpoint::ScopedSet guard(c.failpoints);
        std::string fast, ref;
        int64_t fastWf = 0, refWf = 0;
        auto planOnce = [&](std::string &desc, int64_t &wf) {
            auto plan = codegen::tryPlanConversion(c.src, c.dst,
                                                   c.elemBytes, spec);
            if (!plan.ok()) {
                desc = "unplanned: " + plan.diag().toString();
                return;
            }
            report.kind = plan->kind;
            desc = codegen::describePlan(*plan);
            // Inside refmode::Scoped this dispatches to the reference
            // enumeration, so the totals compare fast-vs-scalar too.
            if (plan->shared.has_value()) {
                wf = codegen::enumerateWavefronts(*plan->shared, c.src,
                                                  c.elemBytes, spec) +
                     codegen::enumerateWavefronts(*plan->shared, c.dst,
                                                  c.elemBytes, spec);
            }
        };
        planOnce(fast, fastWf);
        {
            refmode::Scoped scoped;
            planOnce(ref, refWf);
        }
        if (fast != ref) {
            report.structureOk = false;
            report.detail =
                "word-parallel vs reference describePlan diverged:\n"
                "  fast: " + fast + "\n  ref:  " + ref;
        } else if (fastWf != refWf) {
            report.structureOk = false;
            report.detail = "word-parallel vs reference wavefront "
                            "totals diverged: fast=" +
                            std::to_string(fastWf) +
                            " ref=" + std::to_string(refWf);
        }
        return report;
    };

    std::mt19937 rng(opt.seed);
    check::GenOptions gen;
    gen.maxRank = opt.maxRank;
    std::map<std::string, int> kindCounts;
    for (int iter = 0; iter < opt.iters; ++iter) {
        auto c = check::randomConversionCase(rng, gen);
        check::OracleReport report;
        try {
            report = diffChecker(c);
        } catch (const std::exception &e) {
            std::cerr << "EXCEPTION on " << c.summary << ": " << e.what()
                      << "\n";
            return reportFailure(c, report, diffChecker);
        }
        ++kindCounts[codegen::toString(report.kind)];
        if (opt.verbose) {
            std::cout << "[" << iter << "] " << c.summary << ": "
                      << (report.ok() ? "equivalent" : report.detail)
                      << "\n";
        }
        if (!report.ok())
            return reportFailure(c, report, diffChecker);
    }

    std::cout << "llfuzz --diff-f2: " << opt.iters
              << " cases planned word-parallel and scalar, no "
                 "divergence (seed "
              << opt.seed << ")\n";
    for (const auto &[kind, count] : kindCounts)
        std::cout << "  " << kind << ": " << count << "\n";
    return 0;
}

/**
 * --diff-cute: differential fuzzing of the CuteLayout bridge and the
 * non-pow2 admission pass. Bridge-level divergences shrink with the
 * layout shrinker; admission-level failures shrink to a minimal
 * `.cute` reproducer printed in the corpus format.
 */
int
runDiffCute(const Options &opt)
{
    // One string describing what (if anything) the bridge gets wrong
    // on this layout; empty = clean. Doubles as the shrink predicate.
    auto bridgeDivergence =
        [](const cute::CuteLayout &l) -> std::string {
        bool pow2 = true;
        for (int64_t e : l.flatShape())
            pow2 = pow2 && (e & (e - 1)) == 0;
        if (cute::isLinearizable(l)) {
            auto lin = cute::toLinear(l);
            if (!lin.ok()) {
                return "accepted by isLinearizable but toLinear "
                       "failed: " +
                       lin.diag().toString();
            }
            for (int64_t i = 0; i < l.size(); ++i) {
                if (static_cast<uint64_t>(l(i)) !=
                    lin->applyFlat(static_cast<uint64_t>(i))) {
                    return "integer vs F2 evaluation diverged at " +
                           std::to_string(i);
                }
            }
            auto back = cute::fromLinear(*lin);
            if (!back.ok())
                return "bridged layout not delinearizable: " +
                       back.diag().toString();
            auto again = cute::toLinear(*back);
            if (!again.ok() || !(*again == *lin))
                return "fromLinear -> toLinear not bit-identical";
        } else if (pow2) {
            auto [x, y] = cute::linearityWitness(l);
            if (x < 0 || y < 0)
                return "rejected pow2-extent layout has no witness";
            if (x >= l.size() || y >= l.size())
                return "witness indices out of range";
            if (l(x ^ y) == (l(x) ^ l(y)))
                return "witness does not witness: L(x^y) == L(x)^L(y)";
        } else {
            auto [x, y] = cute::linearityWitness(l);
            if (x != -1 || y != -1)
                return "non-pow2 layout fabricated an XOR witness";
            if (cute::toLinear(l).ok())
                return "toLinear accepted a non-pow2 layout";
        }
        return "";
    };

    std::mt19937 rng(opt.seed);
    check::CuteGenOptions gen;
    int linearizable = 0, witnessed = 0, decomposed = 0, bridged = 0;
    for (int iter = 0; iter < opt.iters; ++iter) {
        // (a) Bridge level.
        cute::CuteLayout layout = check::randomCuteLayout(rng, gen);
        std::string diverged = bridgeDivergence(layout);
        if (!diverged.empty()) {
            std::cerr << "BRIDGE DIVERGENCE on " << layout.toString()
                      << ": " << diverged << "\n";
            cute::CuteLayout minimal = check::shrinkCuteLayout(
                layout, [&](const cute::CuteLayout &cand) {
                    return !bridgeDivergence(cand).empty();
                });
            std::cerr << "shrunk reproducer: " << minimal.toString()
                      << "\n  " << bridgeDivergence(minimal) << "\n";
            return 1;
        }
        if (cute::isLinearizable(layout))
            ++linearizable;
        else if (cute::linearityWitness(layout).first >= 0)
            ++witnessed;

        // (b) Admission level.
        check::CuteCase c = check::randomCuteCase(rng, gen);
        check::CuteOracleReport report;
        std::string exception;
        try {
            report = check::checkCuteCase(c);
        } catch (const std::exception &e) {
            exception = e.what();
        }
        if (exception.empty() && report.ok()) {
            if (report.remainderElems > 0)
                ++decomposed;
            else
                ++bridged;
            if (opt.verbose) {
                std::cout << "[" << iter << "] " << c.summary << ": "
                          << report.toString() << "\n";
            }
            continue;
        }
        std::cerr << "ADMISSION FAILURE on " << c.summary << "\n  src "
                  << c.request.src.toString() << "\n  dst "
                  << c.request.dst.toString() << "\n  "
                  << (exception.empty() ? report.toString()
                                        : "exception: " + exception)
                  << "\n";
        check::CuteShrinkResult shrunk = check::shrinkCuteCase(
            c, [](const check::CuteCase &cand) {
                return check::checkCuteCase(cand);
            });
        std::cerr << "shrunk reproducer (" << shrunk.steps
                  << " steps):\n";
        check::writeCuteCase(std::cerr, shrunk.minimized);
        if (!shrunk.exceptionMessage.empty())
            std::cerr << "  exception: " << shrunk.exceptionMessage
                      << "\n";
        else
            std::cerr << "  " << shrunk.report.toString() << "\n";
        return 1;
    }

    std::cout << "llfuzz --diff-cute: " << opt.iters
              << " layouts bridged and cases admitted, no divergence "
                 "(seed "
              << opt.seed << ")\n"
              << "  bridge: " << linearizable << " linearizable, "
              << witnessed << " rejected-with-witness\n"
              << "  admission: " << decomposed << " decomposed, "
              << bridged << " pure-bridge\n";
    return 0;
}

/**
 * A random mini-IR graph that is valid by construction: every action
 * either adds a value of the pool shape or wires existing pool values
 * through an op that preserves it, so Function's builder checks can
 * never fire. The shapes are small pow2 rank-2 tensors so every
 * generated dot is MMA-eligible and engine runs stay fast. The same
 * (seed, opBudget) pair always regenerates the same graph — the shrink
 * loop relies on that.
 */
ir::Function
randomSynthGraph(uint32_t seed, int opBudget)
{
    std::mt19937 rng(seed);
    ir::Function f("synth_fuzz_s" + std::to_string(seed) + "_b" +
                   std::to_string(opBudget));
    const ir::DType dtypes[] = {ir::DType::F16, ir::DType::F32,
                                ir::DType::BF16, ir::DType::I32,
                                ir::DType::I8};
    auto pickDtype = [&] { return dtypes[rng() % 5]; };
    const int32_t m = 16 << (rng() % 2);
    const int32_t n = 32 << (rng() % 2);
    const ir::Shape shape{m, n};
    // Pool of same-shape values any later action may consume.
    std::vector<int> pool;
    pool.push_back(f.load({pickDtype(), shape}, "seed_a"));
    pool.push_back(f.load({pickDtype(), shape}, "seed_b"));
    auto pick = [&] { return pool[rng() % pool.size()]; };
    for (int i = 0; i < opBudget; ++i) {
        switch (rng() % 6) {
          case 0:
            pool.push_back(f.load({pickDtype(), shape}, "ld"));
            break;
          case 1: {
            int a = pick();
            int b = pick();
            pool.push_back(f.elementwise({a, b}, pickDtype(), "mix"));
            break;
          }
          case 2: {
            // Embedding-style gather with a fresh index tensor.
            int src = pick();
            int idx = f.load({ir::DType::I32, shape}, "idx");
            pool.push_back(f.gather(src, idx, rng() % 2 ? 1 : 0));
            break;
          }
          case 3: {
            // Tensor-core dot on fresh operands; the acc has the pool
            // shape, so it re-enters the pool and later actions can
            // mix a fixed MMA layout into carrier chains.
            int a = f.load({ir::DType::F16, {m, 32}}, "dot_a");
            int b = f.load({ir::DType::F16, {32, n}}, "dot_b");
            pool.push_back(f.dot(a, b, ir::DType::F32));
            break;
          }
          case 4:
            pool.push_back(f.scan(pick(), 1));
            break;
          case 5: {
            // Softmax-style reduce -> expand -> broadcast -> combine:
            // the shape transfers break carrier chains mid-graph.
            int v = pick();
            int r = f.reduce(v, 1, "max");
            int b = f.broadcast(f.expandDims(r, 1), shape);
            pool.push_back(
                f.elementwise({v, b}, f.value(v).type.dtype, "sub"));
            break;
          }
        }
    }
    f.store(pool.back(), "out");
    f.store(pick(), "out2");
    return f;
}

/**
 * --diff-synth: differential fuzzing of whole-kernel layout synthesis.
 * Per graph the layout engine runs synth-off and synth-on; both runs
 * must complete, every surviving ConvertLayout in each annotated
 * function must oracle-verify end to end (checkCaseWithDemotion, the
 * same audit the engine's exec-fallback tests use), and the
 * synthesized run's modeled cost must not exceed the default's.
 */
int
runDiffSynth(const Options &opt)
{
    struct Audit
    {
        bool ok = true;
        std::string error;
        double cycles = 0.0;
        int converts = 0;
        int choseSynth = 0;
    };
    // Run the engine on a copy and oracle-audit every conversion it
    // left in the function. `specName` picks the platform model.
    auto audit = [](ir::Function f, const std::string &specName,
                    bool synth) -> Audit {
        Audit a;
        engine::EngineOptions eo;
        eo.spec = check::specByName(specName);
        eo.synthesizeLayouts = synth;
        engine::LayoutEngine eng(eo);
        const char *mode = synth ? "synth-on" : "synth-off";
        try {
            engine::EngineStats stats = eng.run(f);
            a.choseSynth = stats.synthChoseSynthesized;
        } catch (const std::exception &e) {
            a.ok = false;
            a.error = std::string(mode) + " engine threw: " + e.what();
            return a;
        }
        for (int i = 0; i < f.numOps(); ++i) {
            const ir::Op &o = f.op(i);
            if (o.erased || o.kind != ir::OpKind::ConvertLayout)
                continue;
            const auto &have = f.value(o.operands[0]).layout;
            const auto &want = f.value(o.results[0]).layout;
            if (!have || !want) {
                a.ok = false;
                a.error = std::string(mode) + " op " +
                          std::to_string(i) +
                          ": conversion endpoint lacks a layout";
                return a;
            }
            check::ConversionCase cc;
            cc.src = *have;
            cc.elemBytes =
                ir::byteWidth(f.value(o.results[0]).type.dtype);
            cc.specName = specName;
            cc.summary = f.name() + " op " + std::to_string(i);
            std::string verdict;
            try {
                cc.dst = want->transposeOuts(have->getOutDimNames());
                check::DemotionReport dr =
                    check::checkCaseWithDemotion(cc);
                if (!dr.survived)
                    verdict = "demotion ladder exhausted";
                else if (!dr.report.ok())
                    verdict = dr.report.detail;
            } catch (const std::exception &e) {
                verdict = std::string("exception: ") + e.what();
            }
            if (!verdict.empty()) {
                a.ok = false;
                a.error = std::string(mode) + " op " +
                          std::to_string(i) +
                          " failed the oracle: " + verdict;
                return a;
            }
            ++a.converts;
        }
        a.cycles = engine::estimateKernelCost(f, eo.spec).cycles;
        return a;
    };

    int64_t convertsAudited = 0;
    int graphsChoseSynth = 0;
    // Non-empty string = what diverged on this (seed, budget, spec).
    // Doubles as the shrink predicate.
    auto divergence = [&](uint32_t seed, int budget,
                          const std::string &specName) -> std::string {
        ir::Function base = randomSynthGraph(seed, budget);
        Audit off = audit(base, specName, false);
        if (!off.ok)
            return off.error;
        Audit on = audit(base, specName, true);
        if (!on.ok)
            return on.error;
        if (on.cycles > off.cycles + 1e-6) {
            return "synthesis regressed modeled cycles: off=" +
                   std::to_string(off.cycles) +
                   " on=" + std::to_string(on.cycles);
        }
        convertsAudited += off.converts + on.converts;
        if (on.choseSynth > 0)
            ++graphsChoseSynth;
        return "";
    };

    const std::string specNames[] = {"gh200", "rtx4090", "mi250"};
    for (int iter = 0; iter < opt.iters; ++iter) {
        uint32_t seed = opt.seed + static_cast<uint32_t>(iter);
        const int budget = 3 + static_cast<int>(seed % 6);
        const std::string &specName = specNames[seed % 3];
        std::string msg = divergence(seed, budget, specName);
        if (opt.verbose) {
            std::cout << "[" << iter << "] seed " << seed << " budget "
                      << budget << " " << specName << ": "
                      << (msg.empty() ? "clean" : msg) << "\n";
        }
        if (msg.empty())
            continue;
        // Shrink: same seed, smallest op budget that still fails.
        int minBudget = budget;
        std::string minMsg = msg;
        for (int b = 1; b < budget; ++b) {
            std::string m = divergence(seed, b, specName);
            if (!m.empty()) {
                minBudget = b;
                minMsg = m;
                break;
            }
        }
        std::cerr << "SYNTH DIVERGENCE (seed " << seed << ", op budget "
                  << minBudget << ", " << specName << "): " << minMsg
                  << "\n"
                  << randomSynthGraph(seed, minBudget).print()
                  << "replay: llfuzz --diff-synth --seed " << seed
                  << " --iters 1\n";
        return 1;
    }

    std::cout << "llfuzz --diff-synth: " << opt.iters
              << " graphs run synth-off and synth-on, no divergence "
                 "(seed "
              << opt.seed << ")\n"
              << "  conversions oracle-audited: " << convertsAudited
              << "\n  graphs where synthesis chose a non-default "
                 "assignment: "
              << graphsChoseSynth << "\n";
    return 0;
}

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    auto checker = [](const check::ConversionCase &cc) {
        return check::checkConversionCase(cc);
    };

    if (opt.injectBug)
        return runInjectBugSelfTest(opt);

    if (opt.failpointCoverage)
        return runFailpointCoverage(opt);

    if (opt.failpointPairs)
        return runFailpointPairs(opt);

    if (opt.diffF2)
        return runDiffF2(opt);

    if (opt.diffCute)
        return runDiffCute(opt);

    if (opt.diffSynth)
        return runDiffSynth(opt);

    if (!opt.replayFile.empty()) {
        check::ConversionCase c;
        try {
            c = check::readCaseFile(opt.replayFile);
        } catch (const std::exception &e) {
            std::cerr << "llfuzz: " << e.what() << "\n";
            return 2;
        }
        auto report = checker(c);
        std::cout << (c.summary.empty() ? opt.replayFile : c.summary)
                  << ": " << report.toString() << "\n";
        if (!report.ok())
            return reportFailure(c, report, checker);
        return 0;
    }

    std::mt19937 rng(opt.seed);
    check::GenOptions gen;
    gen.maxRank = opt.maxRank;
    const auto failpointSites = codegen::plannerFailpointSites();
    std::bernoulli_distribution failpointCoin(opt.failpointRate);
    std::map<std::string, int> kindCounts;
    int64_t casesWithFailpoints = 0;
    int64_t corpusWritten = 0;
    for (int iter = 0; iter < opt.iters; ++iter) {
        auto c = check::randomConversionCase(rng, gen);
        if (opt.failpointRate > 0.0) {
            for (const auto &site : failpointSites) {
                if (failpointCoin(rng))
                    c.failpoints.push_back(site);
            }
            if (!c.failpoints.empty()) {
                ++casesWithFailpoints;
                std::ostringstream fs;
                fs << c.summary << " +failpoints{";
                for (size_t s = 0; s < c.failpoints.size(); ++s)
                    fs << (s ? "," : "") << c.failpoints[s];
                fs << "}";
                c.summary = fs.str();
            }
        }
        check::OracleReport report;
        try {
            report = checker(c);
        } catch (const std::exception &e) {
            std::cerr << "EXCEPTION on " << c.summary << ": " << e.what()
                      << "\n";
            return reportFailure(c, report, checker);
        }
        ++kindCounts[codegen::toString(report.kind)];
        if (opt.verbose) {
            std::cout << "[" << iter << "] " << c.summary << ": "
                      << report.toString() << "\n";
        }
        if (!report.ok())
            return reportFailure(c, report, checker);
        if (!opt.emitCorpusDir.empty()) {
            std::ostringstream name;
            name << opt.emitCorpusDir << "/seed" << opt.seed << "_case"
                 << iter << ".txt";
            check::writeCaseFile(name.str(), c);
            ++corpusWritten;
        }
    }

    std::cout << "llfuzz: " << opt.iters
              << " cases checked, 0 failures (seed " << opt.seed
              << ")\n";
    for (const auto &[kind, count] : kindCounts)
        std::cout << "  " << kind << ": " << count << "\n";
    if (opt.failpointRate > 0.0) {
        std::cout << "  cases with injected failpoints: "
                  << casesWithFailpoints << " (rate "
                  << opt.failpointRate << ")\n";
    }
    if (corpusWritten)
        std::cout << "  corpus files written: " << corpusWritten << "\n";
    return 0;
}
