/**
 * @file
 * llserve — drive the concurrent compilation service with a replayed
 * request stream and report its throughput and cache behavior.
 *
 * Workload (combinable):
 *
 *   --corpus DIR   every corpus case file in DIR becomes a
 *                  single-conversion request (the fuzzer's text
 *                  format, served through serveConversion);
 *   --kernels      every Figure 9 kernel (first size knob) becomes a
 *                  whole-kernel compilation request through
 *                  LayoutEngine.
 *
 * Stream shaping:
 *
 *   --repeat K     replay the workload K times (a serving deployment
 *                  sees the same conversions over and over; repeat
 *                  passes are where the plan cache earns its keep);
 *   --shuffle      interleave the repeated stream with a deterministic
 *                  permutation (--seed S, default 42) so threads hit
 *                  overlapping keys at the same time instead of in
 *                  convoy order;
 *   --threads N    worker threads (default 4);
 *   --no-cache     plan every request fresh (the baseline for the
 *                  cache's speedup claims);
 *   --cache-capacity N  total plan-cache entries (default 4096).
 *
 * Reporting: a human summary (throughput, hit rate, p50/p90 request
 * latency) plus a schema-valid BENCH_service.json written next to the
 * process or into $LL_BENCH_JSON_DIR — llstat --validate-bench-json is
 * the schema authority. --expect-hit-rate PCT exits nonzero when the
 * plan-cache hit rate comes in below PCT (used by the llserve_smoke
 * ctest entry), as does any failed request.
 */

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "check/case_io.h"
#include "kernels.h"
#include "service/compile_service.h"
#include "service/plan_cache.h"
#include "support/metrics.h"

using namespace ll;

namespace {

struct Options
{
    std::string corpusDir;
    bool kernels = false;
    int threads = 4;
    int repeat = 1;
    bool shuffle = false;
    uint64_t seed = 42;
    bool noCache = false;
    size_t cacheCapacity = 4096;
    /** Exit nonzero when the hit rate lands below this (percent);
     *  negative disables the check. */
    double expectHitRate = -1.0;
};

void
usage()
{
    std::cerr
        << "usage: llserve [--corpus DIR] [--kernels] [--threads N]\n"
           "               [--repeat K] [--shuffle] [--seed S]\n"
           "               [--no-cache] [--cache-capacity N]\n"
           "               [--expect-hit-rate PCT]\n";
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto needValue = [&](const char *name) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "llserve: " << name << " needs a value\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--corpus") {
            const char *v = needValue("--corpus");
            if (!v)
                return false;
            opt.corpusDir = v;
        } else if (arg == "--kernels") {
            opt.kernels = true;
        } else if (arg == "--threads") {
            const char *v = needValue("--threads");
            if (!v)
                return false;
            opt.threads = std::max(1, std::atoi(v));
        } else if (arg == "--repeat") {
            const char *v = needValue("--repeat");
            if (!v)
                return false;
            opt.repeat = std::max(1, std::atoi(v));
        } else if (arg == "--shuffle") {
            opt.shuffle = true;
        } else if (arg == "--seed") {
            const char *v = needValue("--seed");
            if (!v)
                return false;
            opt.seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--no-cache") {
            opt.noCache = true;
        } else if (arg == "--cache-capacity") {
            const char *v = needValue("--cache-capacity");
            if (!v)
                return false;
            opt.cacheCapacity = static_cast<size_t>(
                std::max(1LL, std::atoll(v)));
        } else if (arg == "--expect-hit-rate") {
            const char *v = needValue("--expect-hit-rate");
            if (!v)
                return false;
            opt.expectHitRate = std::atof(v);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            std::cerr << "llserve: unknown option " << arg << "\n";
            usage();
            return false;
        }
    }
    if (opt.corpusDir.empty() && !opt.kernels) {
        std::cerr << "llserve: nothing to serve (want --corpus and/or "
                     "--kernels)\n";
        usage();
        return false;
    }
    return true;
}

bool
buildCorpusRequests(const std::string &dir,
                    std::vector<service::CompileRequest> &out)
{
    std::vector<std::string> files;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (entry.is_regular_file())
            files.push_back(entry.path().string());
    }
    if (ec) {
        std::cerr << "llserve: cannot read corpus dir " << dir << ": "
                  << ec.message() << "\n";
        return false;
    }
    if (files.empty()) {
        std::cerr << "llserve: corpus dir " << dir
                  << " holds no case files\n";
        return false;
    }
    std::sort(files.begin(), files.end());
    for (const auto &path : files) {
        check::ConversionCase c;
        try {
            c = check::readCaseFile(path);
        } catch (const std::exception &e) {
            std::cerr << "llserve: " << path << ": " << e.what()
                      << "\n";
            return false;
        }
        auto conv = std::make_shared<service::ConversionRequest>();
        conv->src = std::move(c.src);
        conv->dst = std::move(c.dst);
        conv->elemBytes = c.elemBytes;
        conv->spec = c.spec();
        service::CompileRequest req;
        req.name = c.summary.empty() ? path : c.summary;
        req.conversion = std::move(conv);
        out.push_back(std::move(req));
    }
    return true;
}

void
buildKernelRequests(std::vector<service::CompileRequest> &out)
{
    for (const auto &spec : kernels::allKernels()) {
        service::CompileRequest req;
        req.name = "kernel:" + spec.name;
        req.build = [build = spec.build,
                     size = spec.sizes.front()]() {
            return build(size);
        };
        out.push_back(std::move(req));
    }
}

/** BENCH_service.json, same schema as bench::emitBenchJson (llstat
 *  --validate-bench-json is the authority); extra wall_ms/metrics
 *  fields are additive and tolerated by the validator. */
bool
writeBenchJson(const Options &opt, const service::ServiceReport &report,
               double hitRatePct)
{
    std::string dir = ".";
    if (const char *env = std::getenv("LL_BENCH_JSON_DIR"))
        dir = env;
    const std::string path = dir + "/BENCH_service.json";
    std::ofstream os(path);
    if (!os.good()) {
        std::cerr << "llserve: cannot write " << path << "\n";
        return false;
    }
    char buf[512];
    os << "{\n"
       << "  \"name\": \"service\",\n"
       << "  \"reps\": " << opt.repeat << ",\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"wall_ms\": {\"median\": %.6g, \"p90\": %.6g, "
                  "\"total\": %.6g},\n",
                  report.p50LatencyUs / 1e3, report.p90LatencyUs / 1e3,
                  report.wallMs);
    os << buf << "  \"metrics\": {";
    bool first = true;
    auto emit = [&](const std::string &key, double value) {
        std::snprintf(buf, sizeof(buf), "%s\"%s\": %.6g",
                      first ? "" : ", ", key.c_str(), value);
        os << buf;
        first = false;
    };
    emit("service.stream.requests",
         static_cast<double>(report.requests));
    emit("service.stream.failures",
         static_cast<double>(report.failures));
    emit("service.stream.threads", report.threads);
    emit("service.stream.requests_per_sec", report.requestsPerSec);
    emit("service.stream.hit_rate_pct", hitRatePct);
    for (const auto &[name, delta] : report.totals.metrics)
        emit(name, static_cast<double>(delta));
    os << "}\n}\n";
    std::cout << "llserve: wrote " << path << "\n";
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    std::vector<service::CompileRequest> base;
    if (!opt.corpusDir.empty() &&
        !buildCorpusRequests(opt.corpusDir, base))
        return 2;
    if (opt.kernels)
        buildKernelRequests(base);

    std::vector<service::CompileRequest> stream;
    stream.reserve(base.size() * static_cast<size_t>(opt.repeat));
    for (int k = 0; k < opt.repeat; ++k)
        stream.insert(stream.end(), base.begin(), base.end());
    if (opt.shuffle) {
        std::mt19937_64 rng(opt.seed);
        std::shuffle(stream.begin(), stream.end(), rng);
    }

    std::unique_ptr<service::PlanCache> cache;
    if (!opt.noCache) {
        service::PlanCache::Config config;
        config.capacity = opt.cacheCapacity;
        cache = std::make_unique<service::PlanCache>(config);
    }

    service::CompileService::Options serviceOptions;
    serviceOptions.threads = opt.threads;
    serviceOptions.cache = cache.get();
    service::CompileService svc{serviceOptions};
    auto report = svc.run(stream);

    const auto &t = report.totals;
    const int64_t lookups = static_cast<int64_t>(t.planCacheHits) +
                            t.planCacheNegativeHits + t.planCacheMisses;
    const double hitRatePct =
        lookups > 0 ? 100.0 *
                          static_cast<double>(t.planCacheHits +
                                              t.planCacheNegativeHits) /
                          static_cast<double>(lookups)
                    : 0.0;

    std::cout << "llserve: " << report.requests << " request(s) on "
              << report.threads << " thread(s) in " << report.wallMs
              << " ms (" << report.requestsPerSec << " req/s), "
              << report.failures << " failure(s)\n";
    std::cout << "llserve: latency p50 " << report.p50LatencyUs
              << " us, p90 " << report.p90LatencyUs << " us\n";
    if (cache) {
        auto cs = cache->stats();
        std::cout << "llserve: plan cache: " << t.planCacheHits
                  << " hit(s), " << t.planCacheNegativeHits
                  << " negative hit(s), " << t.planCacheMisses
                  << " miss(es) — hit rate " << hitRatePct
                  << "%; size " << cache->size() << "/"
                  << cache->capacity() << ", " << cs.evictions
                  << " eviction(s), " << cs.insertRefusals
                  << " insert refusal(s)\n";
    } else {
        std::cout << "llserve: plan cache disabled (--no-cache)\n";
    }

    if (!writeBenchJson(opt, report, hitRatePct))
        return 1;

    int rc = 0;
    if (report.failures > 0) {
        std::cerr << "llserve: " << report.failures
                  << " request(s) failed\n";
        rc = 1;
    }
    if (opt.expectHitRate >= 0.0 && hitRatePct < opt.expectHitRate) {
        std::cerr << "llserve: hit rate " << hitRatePct
                  << "% below expected " << opt.expectHitRate << "%\n";
        rc = 1;
    }
    return rc;
}
