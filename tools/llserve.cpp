/**
 * @file
 * llserve — drive the concurrent compilation service with a replayed
 * request stream and report its throughput, cache behavior, and (in
 * server mode) its overload posture.
 *
 * Workload (combinable):
 *
 *   --corpus DIR   every corpus case file in DIR becomes a
 *                  single-conversion request (the fuzzer's text
 *                  format, served through the coalesced cache path);
 *   --kernels      every Figure 9 kernel (first size knob) becomes a
 *                  whole-kernel compilation request through
 *                  LayoutEngine.
 *
 * Stream shaping (batch mode, the default):
 *
 *   --repeat K     replay the workload K times (a serving deployment
 *                  sees the same conversions over and over; repeat
 *                  passes are where the plan cache earns its keep);
 *   --shuffle      interleave the repeated stream with a deterministic
 *                  permutation (--seed S, default 42) so threads hit
 *                  overlapping keys at the same time instead of in
 *                  convoy order;
 *   --threads N    worker threads (default 4);
 *   --no-cache     plan every request fresh (the baseline for the
 *                  cache's speedup claims);
 *   --cache-capacity N  total plan-cache entries (default 4096).
 *
 * Server mode (open-loop Poisson arrivals; enabled by --rate or
 * --rate-x-saturation):
 *
 *   --rate R              mean arrival rate, requests/second;
 *   --rate-x-saturation X calibrate the closed-loop saturation
 *                         throughput (a cold batch pass then a warm
 *                         one) and offer X times that rate;
 *   --duration SEC        generation window (default 1.0);
 *   --max-requests N      cap the arrival count (deterministic tests);
 *   --queue-capacity N    admission queue bound (default 64);
 *   --policy P            block | shed-newest | shed-oldest;
 *   --deadline-ms D       per-request deadline from arrival;
 *   --retry-budget N      retries per request for failed attempts;
 *   --retry-backoff-ms B  base backoff, doubled per attempt, jittered;
 *   --slo-p99-ms P        p99 target over admitted requests;
 *   --service-floor-us F  minimum per-attempt service time (spin) so
 *                         overload drills have a controllable
 *                         saturation point;
 *   --rate-sweep M1,M2,.. serve once per multiplier of the base rate
 *                         and emit a throughput-vs-latency curve.
 *
 * Reporting: a human summary (throughput, hit rate, outcome split,
 * latency percentiles) plus a schema-valid BENCH_service.json written
 * next to the process or into $LL_BENCH_JSON_DIR — llstat
 * --validate-bench-json is the schema authority. Exit-code contracts
 * for ctest: --expect-hit-rate PCT (batch), --expect-slo,
 * --expect-sheds N, --expect-no-duplicate-plans; terminal request
 * failures always exit nonzero, shed / deadline-exceeded outcomes are
 * an expected serving posture and do not.
 *
 * Calibration: --ledger PATH (or LL_LEDGER) records every planned
 * conversion's rung evaluations into the calibration ledger and writes
 * the sorted JSONL to PATH. Singleflight leaders are the only planners
 * and the ledger dedups on the planning key, so a coalesced
 * multi-thread run attributes each conversion exactly once — llstat
 * --validate-ledger enforces this, llprof consumes it.
 */

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <random>
#include <string>
#include <unordered_set>
#include <vector>

#include "check/case_io.h"
#include "kernels.h"
#include "service/compile_service.h"
#include "service/plan_cache.h"
#include "support/ledger.h"
#include "support/metrics.h"

using namespace ll;

namespace {

struct Options
{
    std::string corpusDir;
    bool kernels = false;
    /** Run kernel requests with EngineOptions::synthesizeLayouts: the
     *  whole-kernel anchor-assignment search picks the layout
     *  assignment instead of pure propagation. Corpus (conversion)
     *  requests are unaffected — they carry explicit endpoint
     *  layouts. */
    bool synth = false;
    int threads = 4;
    int repeat = 1;
    bool shuffle = false;
    uint64_t seed = 42;
    bool noCache = false;
    size_t cacheCapacity = 4096;
    /** Exit nonzero when the hit rate lands below this (percent);
     *  negative disables the check. Batch mode only. */
    double expectHitRate = -1.0;
    std::string ledgerPath;

    // Server mode.
    double ratePerSec = 0.0;
    double rateXSaturation = 0.0;
    double durationSec = 1.0;
    int64_t maxRequests = 0;
    size_t queueCapacity = 64;
    service::AdmissionPolicy policy =
        service::AdmissionPolicy::ShedOldest;
    double deadlineMs = 0.0;
    int retryBudget = 0;
    double retryBackoffMs = 1.0;
    double sloP99Ms = 0.0;
    double serviceFloorUs = 0.0;
    std::vector<double> rateSweep;

    bool expectSlo = false;
    int64_t expectSheds = -1;
    bool expectNoDuplicatePlans = false;

    bool serverMode() const
    {
        return ratePerSec > 0.0 || rateXSaturation > 0.0;
    }
};

void
usage()
{
    std::cerr
        << "usage: llserve [--corpus DIR] [--kernels] [--synth]\n"
           "               [--threads N]\n"
           "               [--repeat K] [--shuffle] [--seed S]\n"
           "               [--no-cache] [--cache-capacity N]\n"
           "               [--expect-hit-rate PCT] [--ledger PATH]\n"
           "           server mode:\n"
           "               [--rate R | --rate-x-saturation X]\n"
           "               [--duration SEC] [--max-requests N]\n"
           "               [--queue-capacity N]\n"
           "               [--policy block|shed-newest|shed-oldest]\n"
           "               [--deadline-ms D] [--retry-budget N]\n"
           "               [--retry-backoff-ms B] [--slo-p99-ms P]\n"
           "               [--service-floor-us F]\n"
           "               [--rate-sweep M1,M2,...]\n"
           "               [--expect-slo] [--expect-sheds N]\n"
           "               [--expect-no-duplicate-plans]\n";
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto needValue = [&](const char *name) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "llserve: " << name << " needs a value\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--corpus") {
            const char *v = needValue("--corpus");
            if (!v)
                return false;
            opt.corpusDir = v;
        } else if (arg == "--kernels") {
            opt.kernels = true;
        } else if (arg == "--synth") {
            opt.synth = true;
        } else if (arg == "--threads") {
            const char *v = needValue("--threads");
            if (!v)
                return false;
            opt.threads = std::max(1, std::atoi(v));
        } else if (arg == "--repeat") {
            const char *v = needValue("--repeat");
            if (!v)
                return false;
            opt.repeat = std::max(1, std::atoi(v));
        } else if (arg == "--shuffle") {
            opt.shuffle = true;
        } else if (arg == "--seed") {
            const char *v = needValue("--seed");
            if (!v)
                return false;
            opt.seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--no-cache") {
            opt.noCache = true;
        } else if (arg == "--cache-capacity") {
            const char *v = needValue("--cache-capacity");
            if (!v)
                return false;
            opt.cacheCapacity = static_cast<size_t>(
                std::max(1LL, std::atoll(v)));
        } else if (arg == "--expect-hit-rate") {
            const char *v = needValue("--expect-hit-rate");
            if (!v)
                return false;
            opt.expectHitRate = std::atof(v);
        } else if (arg == "--ledger") {
            const char *v = needValue("--ledger");
            if (!v)
                return false;
            opt.ledgerPath = v;
        } else if (arg == "--rate") {
            const char *v = needValue("--rate");
            if (!v)
                return false;
            opt.ratePerSec = std::atof(v);
        } else if (arg == "--rate-x-saturation") {
            const char *v = needValue("--rate-x-saturation");
            if (!v)
                return false;
            opt.rateXSaturation = std::atof(v);
        } else if (arg == "--duration") {
            const char *v = needValue("--duration");
            if (!v)
                return false;
            opt.durationSec = std::atof(v);
        } else if (arg == "--max-requests") {
            const char *v = needValue("--max-requests");
            if (!v)
                return false;
            opt.maxRequests = std::atoll(v);
        } else if (arg == "--queue-capacity") {
            const char *v = needValue("--queue-capacity");
            if (!v)
                return false;
            opt.queueCapacity = static_cast<size_t>(
                std::max(1LL, std::atoll(v)));
        } else if (arg == "--policy") {
            const char *v = needValue("--policy");
            if (!v)
                return false;
            auto policy = service::parseAdmissionPolicy(v);
            if (!policy) {
                std::cerr << "llserve: unknown policy " << v
                          << " (want block | shed-newest | "
                             "shed-oldest)\n";
                return false;
            }
            opt.policy = *policy;
        } else if (arg == "--deadline-ms") {
            const char *v = needValue("--deadline-ms");
            if (!v)
                return false;
            opt.deadlineMs = std::atof(v);
        } else if (arg == "--retry-budget") {
            const char *v = needValue("--retry-budget");
            if (!v)
                return false;
            opt.retryBudget = std::max(0, std::atoi(v));
        } else if (arg == "--retry-backoff-ms") {
            const char *v = needValue("--retry-backoff-ms");
            if (!v)
                return false;
            opt.retryBackoffMs = std::atof(v);
        } else if (arg == "--slo-p99-ms") {
            const char *v = needValue("--slo-p99-ms");
            if (!v)
                return false;
            opt.sloP99Ms = std::atof(v);
        } else if (arg == "--service-floor-us") {
            const char *v = needValue("--service-floor-us");
            if (!v)
                return false;
            opt.serviceFloorUs = std::atof(v);
        } else if (arg == "--rate-sweep") {
            const char *v = needValue("--rate-sweep");
            if (!v)
                return false;
            std::string list = v;
            size_t pos = 0;
            while (pos < list.size()) {
                size_t comma = list.find(',', pos);
                if (comma == std::string::npos)
                    comma = list.size();
                const double m =
                    std::atof(list.substr(pos, comma - pos).c_str());
                if (m > 0.0)
                    opt.rateSweep.push_back(m);
                pos = comma + 1;
            }
            if (opt.rateSweep.empty()) {
                std::cerr << "llserve: --rate-sweep wants positive "
                             "multipliers, e.g. 0.5,1,2\n";
                return false;
            }
        } else if (arg == "--expect-slo") {
            opt.expectSlo = true;
        } else if (arg == "--expect-sheds") {
            const char *v = needValue("--expect-sheds");
            if (!v)
                return false;
            opt.expectSheds = std::atoll(v);
        } else if (arg == "--expect-no-duplicate-plans") {
            opt.expectNoDuplicatePlans = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            std::cerr << "llserve: unknown option " << arg << "\n";
            usage();
            return false;
        }
    }
    if (opt.corpusDir.empty() && !opt.kernels) {
        std::cerr << "llserve: nothing to serve (want --corpus and/or "
                     "--kernels)\n";
        usage();
        return false;
    }
    if (opt.ratePerSec > 0.0 && opt.rateXSaturation > 0.0) {
        std::cerr << "llserve: --rate and --rate-x-saturation are "
                     "mutually exclusive\n";
        return false;
    }
    if (opt.expectNoDuplicatePlans && opt.noCache) {
        std::cerr << "llserve: --expect-no-duplicate-plans needs the "
                     "plan cache (drop --no-cache)\n";
        return false;
    }
    return true;
}

bool
buildCorpusRequests(const std::string &dir,
                    std::vector<service::CompileRequest> &out)
{
    std::vector<std::string> files;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        // Only .txt files hold linear conversion cases; the corpus
        // dir also carries .cute seeds in the cute layout format.
        if (entry.is_regular_file() &&
            entry.path().extension() == ".txt")
            files.push_back(entry.path().string());
    }
    if (ec) {
        std::cerr << "llserve: cannot read corpus dir " << dir << ": "
                  << ec.message() << "\n";
        return false;
    }
    if (files.empty()) {
        std::cerr << "llserve: corpus dir " << dir
                  << " holds no case files\n";
        return false;
    }
    std::sort(files.begin(), files.end());
    for (const auto &path : files) {
        check::ConversionCase c;
        try {
            c = check::readCaseFile(path);
        } catch (const std::exception &e) {
            std::cerr << "llserve: " << path << ": " << e.what()
                      << "\n";
            return false;
        }
        auto conv = std::make_shared<service::ConversionRequest>();
        conv->src = std::move(c.src);
        conv->dst = std::move(c.dst);
        conv->elemBytes = c.elemBytes;
        conv->spec = c.spec();
        service::CompileRequest req;
        req.name = c.summary.empty() ? path : c.summary;
        req.conversion = std::move(conv);
        out.push_back(std::move(req));
    }
    return true;
}

void
buildKernelRequests(std::vector<service::CompileRequest> &out)
{
    for (const auto &spec : kernels::allKernels()) {
        service::CompileRequest req;
        req.name = "kernel:" + spec.name;
        req.build = [build = spec.build,
                     size = spec.sizes.front()]() {
            return build(size);
        };
        out.push_back(std::move(req));
    }
}

/** Planner-duplication accounting for the conversion stream: how many
 *  fresh planner runs happened versus how many distinct keys ended up
 *  planned. With singleflight, a cold stream should show zero
 *  duplicates — every distinct key planned exactly once. */
struct DuplicateStats
{
    int64_t uniqueKeys = 0;
    int64_t uniquePlannedKeys = 0;
    int64_t duplicatePlans = 0;
};

DuplicateStats
computeDuplicateStats(service::PlanCache *cache,
                      const std::vector<service::CompileRequest> &stream,
                      const service::ServiceReport &report)
{
    DuplicateStats dup;
    if (cache == nullptr || stream.empty())
        return dup;
    std::unordered_set<service::PlanKey, service::PlanKeyHash> all;
    std::unordered_set<service::PlanKey, service::PlanKeyHash> planned;
    for (size_t i = 0; i < report.responses.size(); ++i) {
        const auto &req = stream[i % stream.size()];
        if (!req.conversion)
            continue;
        const auto &c = *req.conversion;
        const service::PlanKey key =
            cache->key(c.src, c.dst, c.elemBytes, c.spec);
        all.insert(key);
        if (report.responses[i].outcome ==
            service::RequestOutcome::Planned)
            planned.insert(key);
    }
    dup.uniqueKeys = static_cast<int64_t>(all.size());
    dup.uniquePlannedKeys = static_cast<int64_t>(planned.size());
    dup.duplicatePlans = std::max<int64_t>(
        0, report.freshPlans - dup.uniquePlannedKeys);
    return dup;
}

struct CurvePoint
{
    double ratePerSec = 0.0;
    double goodputPerSec = 0.0;
    double p99Ms = 0.0;
    int64_t shed = 0;
};

double
computeHitRatePct(const service::ServiceReport &report)
{
    const auto &t = report.totals;
    const int64_t lookups = static_cast<int64_t>(t.planCacheHits) +
                            t.planCacheNegativeHits + t.planCacheMisses;
    return lookups > 0
               ? 100.0 *
                     static_cast<double>(t.planCacheHits +
                                         t.planCacheNegativeHits) /
                     static_cast<double>(lookups)
               : 0.0;
}

/** BENCH_service.json, same schema as bench::emitBenchJson (llstat
 *  --validate-bench-json is the authority). The service report always
 *  carries the terminal-outcome split — llstat refuses a "service"
 *  report without it. */
bool
writeBenchJson(const Options &opt, const service::ServiceReport &report,
               double hitRatePct, const DuplicateStats &dup,
               const std::vector<CurvePoint> &curve)
{
    std::string dir = ".";
    if (const char *env = std::getenv("LL_BENCH_JSON_DIR"))
        dir = env;
    const std::string path = dir + "/BENCH_service.json";
    std::ofstream os(path);
    if (!os.good()) {
        std::cerr << "llserve: cannot write " << path << "\n";
        return false;
    }
    char buf[512];
    os << "{\n"
       << "  \"name\": \"service\",\n"
       << "  \"reps\": " << opt.repeat << ",\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"wall_ms\": {\"median\": %.6g, \"p90\": %.6g, "
                  "\"total\": %.6g},\n",
                  report.p50LatencyUs / 1e3, report.p90LatencyUs / 1e3,
                  report.wallMs);
    os << buf << "  \"metrics\": {";
    bool first = true;
    auto emit = [&](const std::string &key, double value) {
        std::snprintf(buf, sizeof(buf), "%s\"%s\": %.6g",
                      first ? "" : ", ", key.c_str(), value);
        os << buf;
        first = false;
    };
    emit("service.stream.requests",
         static_cast<double>(report.requests));
    emit("service.stream.failures",
         static_cast<double>(report.failures));
    emit("service.stream.planned",
         static_cast<double>(report.planned));
    emit("service.stream.shed", static_cast<double>(report.shed));
    emit("service.stream.deadline_exceeded",
         static_cast<double>(report.deadlineExceeded));
    emit("service.stream.failed", static_cast<double>(report.failed));
    emit("service.stream.retries",
         static_cast<double>(report.retries));
    emit("service.stream.coalesced",
         static_cast<double>(report.coalesced));
    emit("service.stream.fresh_plans",
         static_cast<double>(report.freshPlans));
    emit("service.stream.unique_keys",
         static_cast<double>(dup.uniqueKeys));
    emit("service.stream.duplicate_plans",
         static_cast<double>(dup.duplicatePlans));
    emit("service.stream.threads", report.threads);
    emit("service.stream.requests_per_sec", report.requestsPerSec);
    emit("service.stream.hit_rate_pct", hitRatePct);
    emit("service.stream.p99_ms", report.p99LatencyUs / 1e3);
    if (opt.serverMode()) {
        emit("service.stream.offered_rate", report.offeredRatePerSec);
        emit("service.stream.achieved_rate", report.requestsPerSec);
        emit("service.stream.goodput_per_sec", report.goodputPerSec);
        emit("service.stream.slo_p99_ms", report.sloP99Ms);
        emit("service.stream.slo_ok", report.sloOk ? 1.0 : 0.0);
        emit("service.stream.queue_max_depth",
             static_cast<double>(report.queueStats.maxDepth));
    }
    for (size_t k = 0; k < curve.size(); ++k) {
        const std::string prefix =
            "service.curve." + std::to_string(k) + ".";
        emit(prefix + "rate", curve[k].ratePerSec);
        emit(prefix + "goodput", curve[k].goodputPerSec);
        emit(prefix + "p99_ms", curve[k].p99Ms);
        emit(prefix + "shed", static_cast<double>(curve[k].shed));
    }
    for (const auto &[name, delta] : report.totals.metrics)
        emit(name, static_cast<double>(delta));
    os << "}\n}\n";
    std::cout << "llserve: wrote " << path << "\n";
    return true;
}

void
printOutcomeSplit(const service::ServiceReport &report)
{
    std::cout << "llserve: outcomes: " << report.planned
              << " planned, " << report.shed << " shed, "
              << report.deadlineExceeded << " deadline-exceeded, "
              << report.failed << " failed; " << report.retries
              << " retry(ies), " << report.coalesced
              << " coalesced, " << report.freshPlans
              << " fresh plan(s)\n";
}

void
printCacheLine(service::PlanCache *cache,
               const service::ServiceReport &report, double hitRatePct)
{
    const auto &t = report.totals;
    if (cache) {
        auto cs = cache->stats();
        std::cout << "llserve: plan cache: " << t.planCacheHits
                  << " hit(s), " << t.planCacheNegativeHits
                  << " negative hit(s), " << t.planCacheMisses
                  << " miss(es) — hit rate " << hitRatePct
                  << "%; size " << cache->size() << "/"
                  << cache->capacity() << ", " << cs.evictions
                  << " eviction(s), " << cs.insertRefusals
                  << " insert refusal(s)\n";
    } else {
        std::cout << "llserve: plan cache disabled (--no-cache)\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    if (!opt.ledgerPath.empty()) {
        ledger::Ledger::instance().setOutputPath(opt.ledgerPath);
        ledger::Ledger::instance().setEnabled(true);
    }

    std::vector<service::CompileRequest> base;
    if (!opt.corpusDir.empty() &&
        !buildCorpusRequests(opt.corpusDir, base))
        return 2;
    if (opt.kernels)
        buildKernelRequests(base);

    std::vector<service::CompileRequest> stream;
    stream.reserve(base.size() * static_cast<size_t>(opt.repeat));
    for (int k = 0; k < opt.repeat; ++k)
        stream.insert(stream.end(), base.begin(), base.end());
    if (opt.shuffle) {
        std::mt19937_64 rng(opt.seed);
        std::shuffle(stream.begin(), stream.end(), rng);
    }

    std::unique_ptr<service::PlanCache> cache;
    if (!opt.noCache) {
        service::PlanCache::Config config;
        config.capacity = opt.cacheCapacity;
        cache = std::make_unique<service::PlanCache>(config);
    }

    service::CompileService::Options serviceOptions;
    serviceOptions.threads = opt.threads;
    serviceOptions.cache = cache.get();
    serviceOptions.serviceFloorUs = opt.serviceFloorUs;
    serviceOptions.engine.synthesizeLayouts = opt.synth;
    if (opt.synth)
        std::cout << "llserve: layout synthesis on for kernel "
                     "requests (--synth)\n";
    service::CompileService svc{serviceOptions};

    service::ServiceReport report;
    std::vector<CurvePoint> curve;

    if (opt.serverMode()) {
        double baseRate = opt.ratePerSec;
        if (opt.rateXSaturation > 0.0) {
            // Closed-loop calibration: a cold pass to populate the
            // cache, then a warm pass whose throughput is the
            // saturation point of the steady-state service.
            svc.run(stream);
            auto warm = svc.run(stream);
            const double saturation = warm.requestsPerSec;
            if (saturation <= 0.0) {
                std::cerr << "llserve: saturation calibration "
                             "produced no throughput\n";
                return 1;
            }
            baseRate = opt.rateXSaturation * saturation;
            std::cout << "llserve: calibrated saturation "
                      << saturation << " req/s; offering "
                      << opt.rateXSaturation << "x = " << baseRate
                      << " req/s\n";
        }

        std::vector<double> multipliers = opt.rateSweep;
        if (multipliers.empty())
            multipliers.push_back(1.0);

        service::CompileService::ServerConfig cfg;
        cfg.durationSec = opt.durationSec;
        cfg.seed = opt.seed;
        cfg.maxRequests = opt.maxRequests;
        cfg.queueCapacity = opt.queueCapacity;
        cfg.policy = opt.policy;
        cfg.deadlineMs = opt.deadlineMs;
        cfg.retryBudget = opt.retryBudget;
        cfg.retryBackoffMs = opt.retryBackoffMs;
        cfg.sloP99Ms = opt.sloP99Ms;

        for (const double m : multipliers) {
            cfg.ratePerSec = baseRate * m;
            report = svc.serve(stream, cfg);
            CurvePoint point;
            point.ratePerSec = cfg.ratePerSec;
            point.goodputPerSec = report.goodputPerSec;
            point.p99Ms = report.p99LatencyUs / 1e3;
            point.shed = report.shed;
            curve.push_back(point);
            if (multipliers.size() > 1)
                std::cout << "llserve: sweep " << m << "x: offered "
                          << cfg.ratePerSec << " req/s, goodput "
                          << report.goodputPerSec << " req/s, p99 "
                          << report.p99LatencyUs / 1e3 << " ms, "
                          << report.shed << " shed\n";
        }
    } else {
        report = svc.run(stream);
    }

    const double hitRatePct = computeHitRatePct(report);
    const DuplicateStats dup =
        computeDuplicateStats(cache.get(), stream, report);

    if (opt.serverMode()) {
        std::cout << "llserve: server: offered "
                  << report.offeredRatePerSec << " req/s for "
                  << opt.durationSec << " s -> " << report.requests
                  << " arrival(s) on " << report.threads
                  << " thread(s), wall " << report.wallMs << " ms\n";
        printOutcomeSplit(report);
        std::cout << "llserve: latency (admitted) p50 "
                  << report.p50LatencyUs << " us, p90 "
                  << report.p90LatencyUs << " us, p99 "
                  << report.p99LatencyUs << " us; goodput "
                  << report.goodputPerSec << " req/s\n";
        if (report.sloP99Ms > 0.0)
            std::cout << "llserve: SLO p99 <= " << report.sloP99Ms
                      << " ms: "
                      << (report.sloOk ? "OK" : "VIOLATED") << "\n";
        const auto &qs = report.queueStats;
        std::cout << "llserve: queue: " << qs.admitted
                  << " admitted, " << qs.shedNewest
                  << " shed-newest, " << qs.shedOldest
                  << " shed-oldest, " << qs.shedFailpoint
                  << " failpoint-shed, max depth " << qs.maxDepth
                  << "\n";
        const auto &fs = report.flightStats;
        std::cout << "llserve: singleflight: " << fs.leaders
                  << " leader(s), " << fs.followers
                  << " follower(s), " << fs.timeouts
                  << " timeout(s)\n";
    } else {
        std::cout << "llserve: " << report.requests
                  << " request(s) on " << report.threads
                  << " thread(s) in " << report.wallMs << " ms ("
                  << report.requestsPerSec << " req/s), "
                  << report.failures << " failure(s)\n";
        printOutcomeSplit(report);
        std::cout << "llserve: latency p50 " << report.p50LatencyUs
                  << " us, p90 " << report.p90LatencyUs << " us, p99 "
                  << report.p99LatencyUs << " us\n";
    }
    printCacheLine(cache.get(), report, hitRatePct);
    if (cache)
        std::cout << "llserve: plans: " << report.freshPlans
                  << " fresh across " << dup.uniquePlannedKeys
                  << " planned key(s) (" << dup.uniqueKeys
                  << " distinct key(s) offered), "
                  << dup.duplicatePlans << " duplicate(s)\n";

    if (!writeBenchJson(opt, report, hitRatePct, dup, curve))
        return 1;

    int rc = 0;
    if (!opt.ledgerPath.empty()) {
        auto &ledger = ledger::Ledger::instance();
        if (ledger.flushToConfiguredPath()) {
            std::cout << "llserve: ledger written to " << opt.ledgerPath
                      << " (" << ledger.recordCount()
                      << " record(s) across " << ledger.conversionCount()
                      << " conversion(s))\n";
        } else {
            std::cerr << "llserve: could not write ledger to "
                      << opt.ledgerPath << "\n";
            rc = 1;
        }
    }
    if (report.failed > 0) {
        std::cerr << "llserve: " << report.failed
                  << " request(s) failed terminally\n";
        rc = 1;
    }
    if (!opt.serverMode() &&
        (report.shed > 0 || report.deadlineExceeded > 0)) {
        // Batch mode has no admission control or deadlines; these
        // outcomes appearing means something is broken.
        std::cerr << "llserve: unexpected non-planned outcomes in "
                     "batch mode\n";
        rc = 1;
    }
    if (opt.expectHitRate >= 0.0 && hitRatePct < opt.expectHitRate) {
        std::cerr << "llserve: hit rate " << hitRatePct
                  << "% below expected " << opt.expectHitRate << "%\n";
        rc = 1;
    }
    if (opt.expectSlo && !report.sloOk) {
        std::cerr << "llserve: SLO violated: p99 "
                  << report.p99LatencyUs / 1e3 << " ms > "
                  << report.sloP99Ms << " ms\n";
        rc = 1;
    }
    if (opt.expectSheds >= 0 && report.shed < opt.expectSheds) {
        std::cerr << "llserve: expected at least " << opt.expectSheds
                  << " shed(s), saw " << report.shed << "\n";
        rc = 1;
    }
    if (opt.expectNoDuplicatePlans && dup.duplicatePlans > 0) {
        std::cerr << "llserve: " << dup.duplicatePlans
                  << " duplicate planner run(s) on the stream "
                     "(singleflight should have coalesced them)\n";
        rc = 1;
    }
    return rc;
}
