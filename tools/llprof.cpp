/**
 * @file
 * llprof — calibration and regression-gate tooling over the
 * plan-provenance ledger and the BENCH_<name>.json reports.
 *
 * Report mode (default):
 *
 *   --ledger PATH   ingest a calibration ledger (a JSONL file written
 *                   via LL_LEDGER / ledger::Ledger, or a directory
 *                   scanned for *.jsonl). Repeatable. Reports, over
 *                   terminal records that carry a measurement:
 *                     - per-rung prediction error: MAPE of the
 *                       selection cost (estimateCycles) against the
 *                       reporting cost the measured enumerated
 *                       wavefront totals imply, plus the ratio spread;
 *                     - the worst mispriced layout pairs (largest
 *                       |log(predicted/measured)|, --top N);
 *                     - measured-space monotonicity violations: layout
 *                       pairs whose measured cost *decreases* down the
 *                       ladder even though the selection costs are
 *                       non-decreasing by construction — exactly the
 *                       cases where worst-case selection pricing
 *                       mischose, i.e. the autotuner's training signal.
 *   --bench DIR     summarize the BENCH_*.json reports in DIR
 *                   (wall-time medians, the fig9 suite context for the
 *                   ledger numbers).
 *   --top N         how many worst pairs to print (default 5).
 *
 * Gate mode:
 *
 *   --gate BASELINE CURRENT   diff two bench-JSON directories: for
 *                   every BENCH_*.json in BASELINE, the matching
 *                   CURRENT report's wall_ms.median must stay within
 *                   (1 + --tolerance) * baseline + --slack-ms. A
 *                   missing current report is a regression. Exit 0 when
 *                   everything holds, 1 on any regression — the CI
 *                   perf gate (llprof_gate_smoke).
 *   --tolerance F   relative noise tolerance (default 0.10).
 *   --slack-ms MS   absolute slack added on top (default 0.05), so
 *                   microsecond-scale benches do not flap the gate.
 *
 *   When a baseline report carries the layout-synthesis fields
 *   (synth.fig9.converts_eliminated / synth.fig9.cycles in "metrics",
 *   emitted by fig9_real_kernels under LL_FIG9_SYNTH), the matching
 *   current report must carry them too: eliminated may not decrease at
 *   all (a deterministic model count) and cycles may not grow past the
 *   relative tolerance. fig9_synth_smoke exercises both directions.
 *
 * Ledger schema validation lives in `llstat --validate-ledger`; llprof
 * assumes well-formed records and skips lines it cannot parse (counted
 * and reported).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "support/json_lite.h"

using namespace ll;

namespace {

struct Options
{
    std::vector<std::string> ledgerPaths;
    std::string benchDir;
    int top = 5;
    bool gate = false;
    std::string gateBaseline;
    std::string gateCurrent;
    double tolerance = 0.10;
    double slackMs = 0.05;
};

void
usage()
{
    std::cerr
        << "usage: llprof [--ledger PATH]... [--bench DIR] [--top N]\n"
           "       llprof --gate BASELINE CURRENT [--tolerance FRAC]\n"
           "              [--slack-ms MS]\n";
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto needValue = [&](const char *name) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "llprof: " << name << " needs a value\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--ledger") {
            const char *v = needValue("--ledger");
            if (!v)
                return false;
            opt.ledgerPaths.push_back(v);
        } else if (arg == "--bench") {
            const char *v = needValue("--bench");
            if (!v)
                return false;
            opt.benchDir = v;
        } else if (arg == "--top") {
            const char *v = needValue("--top");
            if (!v)
                return false;
            opt.top = std::max(1, std::atoi(v));
        } else if (arg == "--gate") {
            if (i + 2 >= argc) {
                std::cerr << "llprof: --gate needs BASELINE and "
                             "CURRENT directories\n";
                return false;
            }
            opt.gate = true;
            opt.gateBaseline = argv[++i];
            opt.gateCurrent = argv[++i];
        } else if (arg == "--tolerance") {
            const char *v = needValue("--tolerance");
            if (!v)
                return false;
            opt.tolerance = std::atof(v);
            if (opt.tolerance < 0.0) {
                std::cerr << "llprof: --tolerance must be >= 0\n";
                return false;
            }
        } else if (arg == "--slack-ms") {
            const char *v = needValue("--slack-ms");
            if (!v)
                return false;
            opt.slackMs = std::atof(v);
            if (opt.slackMs < 0.0) {
                std::cerr << "llprof: --slack-ms must be >= 0\n";
                return false;
            }
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            std::cerr << "llprof: unknown option " << arg << "\n";
            usage();
            return false;
        }
    }
    if (!opt.gate && opt.ledgerPaths.empty() && opt.benchDir.empty()) {
        std::cerr << "llprof: nothing to do\n";
        usage();
        return false;
    }
    return true;
}

/// Ledger ingestion ---------------------------------------------------

struct LedgerRecord
{
    std::string src, dst, spec;
    int elemBytes = 0;
    std::string startRung, rung, outcome;
    bool terminal = false;
    double predicted = 0.0;
    double measured = 0.0;
    int64_t storeWf = 0, loadWf = 0;
    bool demoted = false, deadline = false;

    bool hasMeasurement() const { return storeWf + loadWf > 0; }
    std::string pairKey() const
    {
        return src + "|" + dst + "|" + std::to_string(elemBytes) + "|" +
               spec;
    }
};

/** Ladder position of a span-taxonomy rung name; -1 if unknown. */
int
rungIndex(const std::string &rung)
{
    static const char *kLadder[] = {
        "noop",          "register-permute", "warp-shuffle",
        "shared-memory", "shared-padded",    "shared-scalar"};
    for (int i = 0; i < 6; ++i) {
        if (rung == kLadder[i])
            return i + 1;
    }
    return -1;
}

std::vector<std::string>
expandLedgerPaths(const std::vector<std::string> &paths, int &errors)
{
    std::vector<std::string> files;
    for (const auto &p : paths) {
        std::error_code ec;
        if (std::filesystem::is_directory(p, ec)) {
            for (const auto &entry :
                 std::filesystem::directory_iterator(p, ec)) {
                if (entry.is_regular_file() &&
                    entry.path().extension() == ".jsonl")
                    files.push_back(entry.path().string());
            }
            if (ec) {
                std::cerr << "llprof: cannot read " << p << ": "
                          << ec.message() << "\n";
                ++errors;
            }
        } else {
            files.push_back(p);
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

bool
readLedgerFile(const std::string &path, std::vector<LedgerRecord> &out,
               int &skipped)
{
    std::ifstream is(path);
    if (!is.good()) {
        std::cerr << "llprof: cannot open " << path << "\n";
        return false;
    }
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        auto parsed = jsonlite::parse(line);
        if (!parsed.has_value() || !parsed->isObject()) {
            ++skipped;
            continue;
        }
        LedgerRecord r;
        auto str = [&](const char *key, std::string &into) {
            const auto *v = parsed->find(key);
            if (v && v->isString())
                into = v->str;
        };
        auto num = [&](const char *key, double &into) {
            const auto *v = parsed->find(key);
            if (v && v->isNumber())
                into = v->number;
        };
        auto boolean = [&](const char *key, bool &into) {
            const auto *v = parsed->find(key);
            if (v && v->isBool())
                into = v->boolean;
        };
        str("src", r.src);
        str("dst", r.dst);
        str("spec", r.spec);
        str("start_rung", r.startRung);
        str("rung", r.rung);
        str("outcome", r.outcome);
        boolean("terminal", r.terminal);
        boolean("demoted", r.demoted);
        boolean("deadline", r.deadline);
        double elem = 0, store = 0, load = 0;
        num("elem", elem);
        num("predicted_cycles", r.predicted);
        num("measured_cycles", r.measured);
        num("store_wf", store);
        num("load_wf", load);
        r.elemBytes = static_cast<int>(elem);
        r.storeWf = static_cast<int64_t>(store);
        r.loadWf = static_cast<int64_t>(load);
        if (r.src.empty() || r.dst.empty() || rungIndex(r.rung) < 0) {
            ++skipped;
            continue;
        }
        out.push_back(std::move(r));
    }
    return true;
}

int
reportLedger(const Options &opt)
{
    int errors = 0;
    auto files = expandLedgerPaths(opt.ledgerPaths, errors);
    if (files.empty()) {
        std::cerr << "llprof: no ledger files found\n";
        return 1;
    }
    std::vector<LedgerRecord> records;
    int skipped = 0;
    for (const auto &f : files) {
        if (!readLedgerFile(f, records, skipped))
            return 1;
    }
    std::printf("llprof: %zu record(s) from %zu ledger file(s)",
                records.size(), files.size());
    if (skipped)
        std::printf(", %d unparseable line(s) skipped", skipped);
    std::printf("\n");

    // Per-rung prediction error over measured terminal accepts.
    struct RungStats
    {
        int64_t evaluated = 0;
        int64_t accepted = 0;
        int64_t measuredN = 0;
        double apeSum = 0.0; ///< sum of |pred-meas|/meas
        double ratioMin = 0.0, ratioMax = 0.0;
    };
    std::map<int, RungStats> byRung;
    std::vector<const LedgerRecord *> measured;
    for (const auto &r : records) {
        RungStats &s = byRung[rungIndex(r.rung)];
        ++s.evaluated;
        if (r.outcome != "accept")
            continue;
        ++s.accepted;
        if (!r.terminal || !r.hasMeasurement() || r.measured <= 0.0)
            continue;
        const double ratio = r.predicted / r.measured;
        if (s.measuredN == 0) {
            s.ratioMin = s.ratioMax = ratio;
        } else {
            s.ratioMin = std::min(s.ratioMin, ratio);
            s.ratioMax = std::max(s.ratioMax, ratio);
        }
        ++s.measuredN;
        s.apeSum += std::fabs(r.predicted - r.measured) / r.measured;
        measured.push_back(&r);
    }
    std::printf("\nper-rung prediction error (selection cost vs "
                "measured reporting cost):\n");
    std::printf("  %-18s %9s %9s %9s %9s %9s %9s\n", "rung", "evals",
                "accepts", "measured", "MAPE%", "ratio-min",
                "ratio-max");
    static const char *kLadder[] = {
        "noop",          "register-permute", "warp-shuffle",
        "shared-memory", "shared-padded",    "shared-scalar"};
    for (int i = 1; i <= 6; ++i) {
        auto it = byRung.find(i);
        if (it == byRung.end())
            continue;
        const RungStats &s = it->second;
        if (s.measuredN > 0)
            std::printf("  %-18s %9lld %9lld %9lld %9.1f %9.3f %9.3f\n",
                        kLadder[i - 1],
                        static_cast<long long>(s.evaluated),
                        static_cast<long long>(s.accepted),
                        static_cast<long long>(s.measuredN),
                        100.0 * s.apeSum /
                            static_cast<double>(s.measuredN),
                        s.ratioMin, s.ratioMax);
        else
            std::printf("  %-18s %9lld %9lld %9s %9s %9s %9s\n",
                        kLadder[i - 1],
                        static_cast<long long>(s.evaluated),
                        static_cast<long long>(s.accepted), "-", "-",
                        "-", "-");
    }

    // Worst mispriced layout pairs.
    std::sort(measured.begin(), measured.end(),
              [](const LedgerRecord *a, const LedgerRecord *b) {
                  const double la =
                      std::fabs(std::log(a->predicted / a->measured));
                  const double lb =
                      std::fabs(std::log(b->predicted / b->measured));
                  if (la != lb)
                      return la > lb;
                  return a->pairKey() < b->pairKey();
              });
    const int top =
        std::min<int>(opt.top, static_cast<int>(measured.size()));
    if (top > 0) {
        std::printf("\nworst mispriced layout pairs (top %d):\n", top);
        for (int i = 0; i < top; ++i) {
            const LedgerRecord &r = *measured[static_cast<size_t>(i)];
            std::printf("  %s -> %s elem=%d rung=%s predicted=%.1f "
                        "measured=%.1f ratio=%.3f%s\n",
                        r.src.c_str(), r.dst.c_str(), r.elemBytes,
                        r.rung.c_str(), r.predicted, r.measured,
                        r.predicted / r.measured,
                        r.demoted ? " (demoted)" : "");
        }
    }

    // Measured-space monotonicity: the ladder's selection costs are
    // non-decreasing down the ladder by construction; flag layout
    // pairs where the *measured* costs invert that order (a lower rung
    // measured costlier than a higher one).
    std::map<std::string, std::vector<const LedgerRecord *>> byPair;
    for (const auto *r : measured)
        byPair[r->pairKey()].push_back(r);
    int64_t pairsChecked = 0, violations = 0;
    for (auto &[key, recs] : byPair) {
        if (recs.size() < 2)
            continue;
        std::sort(recs.begin(), recs.end(),
                  [](const LedgerRecord *a, const LedgerRecord *b) {
                      return rungIndex(a->rung) < rungIndex(b->rung);
                  });
        for (size_t i = 0; i + 1 < recs.size(); ++i) {
            for (size_t j = i + 1; j < recs.size(); ++j) {
                if (rungIndex(recs[i]->rung) == rungIndex(recs[j]->rung))
                    continue;
                ++pairsChecked;
                if (recs[i]->measured > recs[j]->measured) {
                    ++violations;
                    std::printf("  monotonicity violation: %s rung %s "
                                "measured %.1f > rung %s measured "
                                "%.1f\n",
                                key.c_str(), recs[i]->rung.c_str(),
                                recs[i]->measured, recs[j]->rung.c_str(),
                                recs[j]->measured);
                }
            }
        }
    }
    std::printf("\nmeasured-space monotonicity: %lld rung pair(s) "
                "compared, %lld violation(s)\n",
                static_cast<long long>(pairsChecked),
                static_cast<long long>(violations));
    return errors ? 1 : 0;
}

/// Bench-JSON handling ------------------------------------------------

struct BenchReport
{
    std::string name;
    double medianMs = 0.0;
    double p90Ms = 0.0;
    double reps = 0.0;
    /** Layout-synthesis fields from a fig9 run with LL_FIG9_SYNTH
     *  (metrics object); absent from every other report. The gate
     *  treats them as part of the contract once a baseline carries
     *  them: eliminated must not decrease (it is a deterministic
     *  model count, no tolerance) and cycles must not grow past the
     *  wall-time tolerance. */
    std::optional<double> synthEliminated;
    std::optional<double> synthCycles;
};

std::optional<BenchReport>
readBenchReport(const std::string &path)
{
    std::ifstream is(path);
    std::ostringstream text;
    text << is.rdbuf();
    auto parsed = jsonlite::parse(text.str());
    if (!parsed.has_value() || !parsed->isObject())
        return std::nullopt;
    const auto *name = parsed->find("name");
    const auto *wall = parsed->find("wall_ms");
    if (!name || !name->isString() || !wall || !wall->isObject())
        return std::nullopt;
    const auto *median = wall->find("median");
    const auto *p90 = wall->find("p90");
    if (!median || !median->isNumber())
        return std::nullopt;
    BenchReport r;
    r.name = name->str;
    r.medianMs = median->number;
    r.p90Ms = p90 && p90->isNumber() ? p90->number : 0.0;
    const auto *reps = parsed->find("reps");
    r.reps = reps && reps->isNumber() ? reps->number : 0.0;
    if (const auto *metrics = parsed->find("metrics");
        metrics && metrics->isObject()) {
        const auto *elim =
            metrics->find("synth.fig9.converts_eliminated");
        if (elim && elim->isNumber())
            r.synthEliminated = elim->number;
        const auto *cycles = metrics->find("synth.fig9.cycles");
        if (cycles && cycles->isNumber())
            r.synthCycles = cycles->number;
    }
    return r;
}

/** name -> report for every BENCH_*.json in dir; nullopt on IO error. */
std::optional<std::map<std::string, BenchReport>>
readBenchDir(const std::string &dir)
{
    std::map<std::string, BenchReport> out;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file())
            continue;
        const std::string base = entry.path().filename().string();
        if (base.rfind("BENCH_", 0) != 0 ||
            entry.path().extension() != ".json")
            continue;
        auto report = readBenchReport(entry.path().string());
        if (!report.has_value()) {
            std::cerr << "llprof: " << entry.path().string()
                      << ": malformed bench report\n";
            return std::nullopt;
        }
        out[report->name] = *report;
    }
    if (ec) {
        std::cerr << "llprof: cannot read " << dir << ": "
                  << ec.message() << "\n";
        return std::nullopt;
    }
    return out;
}

int
reportBench(const std::string &dir)
{
    auto reports = readBenchDir(dir);
    if (!reports.has_value())
        return 1;
    if (reports->empty()) {
        std::cerr << "llprof: no BENCH_*.json found in " << dir << "\n";
        return 1;
    }
    std::printf("\nbench suite (%s):\n", dir.c_str());
    std::printf("  %-28s %12s %12s %6s\n", "name", "median-ms",
                "p90-ms", "reps");
    double total = 0.0;
    for (const auto &[name, r] : *reports) {
        std::printf("  %-28s %12.3f %12.3f %6.0f\n", name.c_str(),
                    r.medianMs, r.p90Ms, r.reps);
        total += r.medianMs;
    }
    std::printf("  %-28s %12.3f\n", "total", total);
    return 0;
}

int
runGate(const Options &opt)
{
    auto baseline = readBenchDir(opt.gateBaseline);
    auto current = readBenchDir(opt.gateCurrent);
    if (!baseline.has_value() || !current.has_value())
        return 2;
    if (baseline->empty()) {
        std::cerr << "llprof: no BENCH_*.json found in "
                  << opt.gateBaseline << "\n";
        return 2;
    }
    int regressions = 0;
    std::printf("llprof gate: tolerance %.0f%% + %.3g ms slack\n",
                100.0 * opt.tolerance, opt.slackMs);
    std::printf("  %-28s %12s %12s %8s  %s\n", "name", "baseline-ms",
                "current-ms", "delta%", "verdict");
    for (const auto &[name, base] : *baseline) {
        auto it = current->find(name);
        if (it == current->end()) {
            ++regressions;
            std::printf("  %-28s %12.3f %12s %8s  MISSING\n",
                        name.c_str(), base.medianMs, "-", "-");
            continue;
        }
        const double cur = it->second.medianMs;
        const double limit =
            base.medianMs * (1.0 + opt.tolerance) + opt.slackMs;
        const double deltaPct =
            base.medianMs > 0.0
                ? 100.0 * (cur - base.medianMs) / base.medianMs
                : 0.0;
        const bool regressed = cur > limit;
        regressions += regressed;
        std::printf("  %-28s %12.3f %12.3f %+8.1f  %s\n", name.c_str(),
                    base.medianMs, cur, deltaPct,
                    regressed ? "REGRESSED" : "ok");
        // Synth fields: present in the baseline -> part of the
        // contract for the current report too.
        if (base.synthEliminated.has_value()) {
            const auto &curR = it->second;
            bool bad;
            if (!curR.synthEliminated.has_value()) {
                bad = true;
                std::printf("  %-28s %12.0f %12s %8s  MISSING\n",
                            (name + ".synth_eliminated").c_str(),
                            *base.synthEliminated, "-", "-");
            } else {
                bad = *curR.synthEliminated < *base.synthEliminated;
                std::printf("  %-28s %12.0f %12.0f %8s  %s\n",
                            (name + ".synth_eliminated").c_str(),
                            *base.synthEliminated,
                            *curR.synthEliminated, "-",
                            bad ? "REGRESSED" : "ok");
            }
            regressions += bad;
        }
        if (base.synthCycles.has_value()) {
            const auto &curR = it->second;
            bool bad;
            if (!curR.synthCycles.has_value()) {
                bad = true;
                std::printf("  %-28s %12.0f %12s %8s  MISSING\n",
                            (name + ".synth_cycles").c_str(),
                            *base.synthCycles, "-", "-");
            } else {
                const double cycleLimit =
                    *base.synthCycles * (1.0 + opt.tolerance);
                bad = *curR.synthCycles > cycleLimit;
                std::printf("  %-28s %12.0f %12.0f %8s  %s\n",
                            (name + ".synth_cycles").c_str(),
                            *base.synthCycles, *curR.synthCycles, "-",
                            bad ? "REGRESSED" : "ok");
            }
            regressions += bad;
        }
    }
    std::printf("llprof gate: %d regression(s) across %zu bench(es)\n",
                regressions, baseline->size());
    return regressions ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    if (opt.gate)
        return runGate(opt);

    int rc = 0;
    if (!opt.ledgerPaths.empty())
        rc = reportLedger(opt);
    if (!opt.benchDir.empty()) {
        int benchRc = reportBench(opt.benchDir);
        rc = rc ? rc : benchRc;
    }
    return rc;
}
