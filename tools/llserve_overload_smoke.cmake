# Overload drill for the compilation server, in two phases.
#
# Phase 1 — cold-miss coalescing: replay the shuffled seed corpus cold
# on 8 threads and demand zero duplicate planner runs (singleflight
# must coalesce every concurrent miss on a key into one plan).
#
# Phase 2 — load shedding under 2x saturation: calibrate the machine's
# closed-loop saturation throughput (with a 1 ms per-request service
# floor so the saturation point is controllable on any host, including
# sanitizer builds), then offer a Poisson stream at twice that rate for
# one second. The run must terminate, shed deterministically (at least
# one shed under the fixed seed), and keep the admitted p99 within the
# SLO — that is the whole point of shedding.
#
# Both phases must emit a BENCH_service.json that llstat
# --validate-bench-json accepts, including the terminal-outcome split
# it requires of "service" reports.
#
# Script arguments (via -D):
#   LLSERVE     path to the llserve binary
#   LLSTAT      path to the llstat binary
#   CORPUS_DIR  seed corpus directory
#   OUT_DIR     scratch dir for the emitted reports

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}/cold")
file(MAKE_DIRECTORY "${OUT_DIR}/overload")

# Phase 1: cold shuffled batch at 8 threads -> zero duplicate plans.
execute_process(
    COMMAND ${CMAKE_COMMAND} -E env "LL_BENCH_JSON_DIR=${OUT_DIR}/cold"
            "${LLSERVE}" --corpus "${CORPUS_DIR}"
            --threads 8 --repeat 2 --shuffle --seed 42
            --expect-no-duplicate-plans
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "cold coalescing phase exited with ${rc}")
endif()
execute_process(
    COMMAND "${LLSTAT}" --validate-bench-json "${OUT_DIR}/cold"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "cold-phase BENCH_service.json failed schema "
                        "validation")
endif()

# Phase 2: open-loop Poisson at 2x the calibrated saturation for 1 s.
# shed-oldest + a 64-deep queue bounds the queueing delay admitted
# requests can accumulate, so the 250 ms p99 SLO must hold by shedding.
execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
            "LL_BENCH_JSON_DIR=${OUT_DIR}/overload"
            "${LLSERVE}" --corpus "${CORPUS_DIR}"
            --threads 4 --seed 42
            --rate-x-saturation 2 --duration 1
            --service-floor-us 1000
            --policy shed-oldest --queue-capacity 64
            --slo-p99-ms 250
            --expect-sheds 1 --expect-slo
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "overload phase exited with ${rc}")
endif()
execute_process(
    COMMAND "${LLSTAT}" --validate-bench-json "${OUT_DIR}/overload"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "overload-phase BENCH_service.json failed "
                        "schema validation")
endif()
