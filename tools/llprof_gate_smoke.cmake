# The perf regression gate's own contract:
#   1. generate a real baseline bench dir by replaying the corpus
#      through llserve (one rep keeps it fast; the gate only reads the
#      emitted BENCH_*.json);
#   2. self vs self must pass (exit 0);
#   3. a copy whose wall_ms.median is inflated 25% — past the default
#      10% tolerance — must fail (exit nonzero);
#   4. a copy missing a report entirely must also fail.
#
# Script arguments (via -D):
#   LLSERVE     path to the llserve binary
#   LLPROF      path to the llprof binary
#   CORPUS_DIR  seed corpus directory
#   OUT_DIR     scratch dir for the bench-JSON trees

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}/baseline")

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
            "LL_BENCH_JSON_DIR=${OUT_DIR}/baseline" "LL_BENCH_REPS=1"
            "${LLSERVE}" --corpus "${CORPUS_DIR}" --threads 2
    RESULT_VARIABLE rc
    OUTPUT_QUIET)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "llserve baseline run exited with ${rc}")
endif()
if(NOT EXISTS "${OUT_DIR}/baseline/BENCH_service.json")
    message(FATAL_ERROR "baseline run did not emit BENCH_service.json")
endif()

# Self vs self: no regression.
execute_process(
    COMMAND "${LLPROF}" --gate "${OUT_DIR}/baseline"
            "${OUT_DIR}/baseline"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "gate failed on self vs self (rc ${rc})")
endif()

# Inflate wall_ms.median by 50% — well past the 10% default tolerance.
# The slack floor is overridden to 0 so the check is purely relative
# and does not depend on how fast this machine ran the baseline.
# CMake math() is integer-only, so the median is scaled to integer
# micro-units first; +50% (x + x/2) keeps everything integral.
file(READ "${OUT_DIR}/baseline/BENCH_service.json" report)
string(REGEX MATCH "\"median\": ([0-9]+)(\\.([0-9]+))?" matched
       "${report}")
if(matched STREQUAL "")
    message(FATAL_ERROR "could not find wall_ms.median in the report")
endif()
set(median "${CMAKE_MATCH_1}")
if(NOT CMAKE_MATCH_3 STREQUAL "")
    set(median "${median}.${CMAKE_MATCH_3}")
endif()
string(SUBSTRING "${CMAKE_MATCH_3}000000" 0 6 fracPad)
math(EXPR microVal "${CMAKE_MATCH_1} * 1000000 + ${fracPad}")
math(EXPR inflatedMicro "${microVal} + ${microVal} / 2")
math(EXPR inflInt "${inflatedMicro} / 1000000")
math(EXPR inflFrac "${inflatedMicro} % 1000000")
string(LENGTH "${inflFrac}" fracLen)
set(zeroPad "")
if(fracLen LESS 6)
    math(EXPR padN "6 - ${fracLen}")
    string(REPEAT "0" ${padN} zeroPad)
endif()
set(inflated "${inflInt}.${zeroPad}${inflFrac}")

file(MAKE_DIRECTORY "${OUT_DIR}/regressed")
string(REPLACE "\"median\": ${median}" "\"median\": ${inflated}"
       regressed "${report}")
if(regressed STREQUAL "${report}")
    message(FATAL_ERROR "failed to inflate the median for the test")
endif()
file(WRITE "${OUT_DIR}/regressed/BENCH_service.json" "${regressed}")

execute_process(
    COMMAND "${LLPROF}" --gate "${OUT_DIR}/baseline"
            "${OUT_DIR}/regressed" --slack-ms 0
    RESULT_VARIABLE rc)
if(rc EQUAL 0)
    message(FATAL_ERROR
            "gate passed a 1.5x inflated median (want nonzero exit)")
endif()

# A current tree missing the report entirely is also a regression.
file(MAKE_DIRECTORY "${OUT_DIR}/empty")
file(WRITE "${OUT_DIR}/empty/BENCH_unrelated.json"
     "{\"name\": \"unrelated\", \"reps\": 1, \"wall_ms\": {\"median\": 1.0, \"p90\": 1.0, \"min\": 1.0, \"mean\": 1.0}, \"metrics\": {}}")
execute_process(
    COMMAND "${LLPROF}" --gate "${OUT_DIR}/baseline" "${OUT_DIR}/empty"
    RESULT_VARIABLE rc)
if(rc EQUAL 0)
    message(FATAL_ERROR "gate passed with a missing current report")
endif()
