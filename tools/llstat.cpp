/**
 * @file
 * llstat — observability driver: replay work through the instrumented
 * pipeline and report the trace + metrics it produced.
 *
 * Three workloads, combinable in one invocation:
 *
 *   --corpus DIR   replay every corpus case file in DIR (the fuzzer's
 *                  text format) through tryPlanConversion and a smoke
 *                  execution, mirroring what the engine does per
 *                  ConvertLayout op;
 *   --case FILE    replay one corpus case file;
 *   --kernels      run the Figure 9 kernel suite through LayoutEngine
 *                  (first size knob of each kernel), the full
 *                  assign/cleanup/plan pipeline.
 *
 * Reporting:
 *
 *   --trace PATH        write the Chrome trace-event JSON to PATH
 *                       (tracing is force-enabled; open the file in
 *                       Perfetto / chrome://tracing);
 *   --trace-reset       after reporting, flush the process-global
 *                       trace buffer (to --trace PATH when given) and
 *                       clear it; the dropped-event count resets with
 *                       it, so a long-lived process can carve its
 *                       timeline into bounded segments;
 *   --metrics text|json metrics exposition format on stdout (default
 *                       text, Prometheus-style; "none" to suppress);
 *   --check-spans       fail (exit 1) unless every planned conversion
 *                       produced a "plan.conversion" span carrying the
 *                       selected rung and modeled cycles, and — with
 *                       --kernels — every live ConvertLayout op in
 *                       every kernel has a matching "convert.op" span.
 *
 * Validation:
 *
 *   --validate-bench-json DIR  check every BENCH_*.json in DIR against
 *                              the benchmark report schema (name, reps,
 *                              wall_ms.median/p90, metrics object);
 *                              fails if DIR holds none.
 *
 *   --validate-ledger PATH     check a calibration ledger (the JSONL
 *                              file LL_LEDGER / ledger::Ledger writes)
 *                              against the CalibrationRecord schema:
 *                              every field present and well-typed, rung
 *                              names drawn from the span taxonomy
 *                              (DESIGN.md §16), and exactly one
 *                              terminal record per planned conversion
 *                              — the (src, dst, elem, spec, start_rung)
 *                              group.
 *
 * The --check-spans contract is what the llstat_corpus_spans ctest
 * entry enforces: the span taxonomy documented in DESIGN.md is load
 * bearing, not decorative.
 */

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/case_io.h"
#include "codegen/conversion.h"
#include "engine/layout_engine.h"
#include "kernels.h"
#include "support/json_lite.h"
#include "support/metrics.h"
#include "support/trace.h"

using namespace ll;

namespace {

struct Options
{
    std::string corpusDir;
    std::string caseFile;
    bool kernels = false;
    std::string tracePath;
    bool traceReset = false;
    std::string metricsFormat = "text";
    bool checkSpans = false;
    std::string validateBenchDir;
    std::string validateLedgerPath;
};

void
usage()
{
    std::cerr
        << "usage: llstat [--corpus DIR] [--case FILE] [--kernels]\n"
           "              [--trace PATH] [--trace-reset]\n"
           "              [--metrics text|json|none]\n"
           "              [--check-spans] [--validate-bench-json DIR]\n"
           "              [--validate-ledger PATH]\n";
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto needValue = [&](const char *name) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "llstat: " << name << " needs a value\n";
                return nullptr;
            }
            return argv[++i];
        };
        if (arg == "--corpus") {
            const char *v = needValue("--corpus");
            if (!v)
                return false;
            opt.corpusDir = v;
        } else if (arg == "--case") {
            const char *v = needValue("--case");
            if (!v)
                return false;
            opt.caseFile = v;
        } else if (arg == "--kernels") {
            opt.kernels = true;
        } else if (arg == "--trace") {
            const char *v = needValue("--trace");
            if (!v)
                return false;
            opt.tracePath = v;
        } else if (arg == "--metrics") {
            const char *v = needValue("--metrics");
            if (!v)
                return false;
            opt.metricsFormat = v;
            if (opt.metricsFormat != "text" &&
                opt.metricsFormat != "json" &&
                opt.metricsFormat != "none") {
                std::cerr << "llstat: --metrics wants text, json or "
                             "none\n";
                return false;
            }
        } else if (arg == "--trace-reset") {
            opt.traceReset = true;
        } else if (arg == "--check-spans") {
            opt.checkSpans = true;
        } else if (arg == "--validate-bench-json") {
            const char *v = needValue("--validate-bench-json");
            if (!v)
                return false;
            opt.validateBenchDir = v;
        } else if (arg == "--validate-ledger") {
            const char *v = needValue("--validate-ledger");
            if (!v)
                return false;
            opt.validateLedgerPath = v;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else {
            std::cerr << "llstat: unknown option " << arg << "\n";
            usage();
            return false;
        }
    }
    if (opt.corpusDir.empty() && opt.caseFile.empty() && !opt.kernels &&
        opt.validateBenchDir.empty() && opt.validateLedgerPath.empty()) {
        std::cerr << "llstat: nothing to do\n";
        usage();
        return false;
    }
    return true;
}

/** One span's args, looked up by key; nullptr when absent. */
const std::string *
spanArg(const trace::Event &e, const char *key)
{
    for (const auto &a : e.args) {
        if (std::strcmp(a.key, key) == 0)
            return &a.value;
    }
    return nullptr;
}

struct ReplayTally
{
    int cases = 0;
    int planned = 0;
    int planFailed = 0;
    int execFailed = 0;
    int spanViolations = 0;
};

/**
 * Replay one conversion case the way the engine treats one
 * ConvertLayout op: structured planning, then a smoke execution of the
 * chosen plan. With span checking on, the window of trace events this
 * case appended must contain a "plan.conversion" span whose args carry
 * the selected rung ("kind") and the modeled cost ("cycles").
 */
void
replayCase(const check::ConversionCase &c, const std::string &label,
           bool checkSpans, ReplayTally &tally)
{
    ++tally.cases;
    const size_t before = trace::eventCount();
    auto spec = c.spec();
    auto plan =
        codegen::tryPlanConversion(c.src, c.dst, c.elemBytes, spec);
    if (plan.ok()) {
        ++tally.planned;
        auto fail = codegen::smokeExecutePlan(*plan, c.src, c.dst,
                                              c.elemBytes, spec);
        if (fail.has_value()) {
            ++tally.execFailed;
            std::cerr << "llstat: smoke execution failed on " << label
                      << ": " << fail->toString() << "\n";
        }
    } else {
        ++tally.planFailed;
        std::cerr << "llstat: planning failed on " << label << ": "
                  << plan.diag().toString() << "\n";
    }

    if (!checkSpans)
        return;
    bool found = false;
    auto events = trace::snapshotEvents();
    for (size_t i = before; i < events.size(); ++i) {
        const auto &e = events[i];
        if (e.name != "plan.conversion")
            continue;
        const std::string *kind = spanArg(e, "kind");
        if (!kind)
            continue;
        if (plan.ok()) {
            if (*kind == codegen::toString(plan->kind) &&
                spanArg(e, "cycles")) {
                found = true;
                break;
            }
        } else if (*kind == "unplanned") {
            found = true;
            break;
        }
    }
    if (!found) {
        ++tally.spanViolations;
        std::cerr << "llstat: no plan.conversion span with rung + cost "
                     "args for "
                  << label << "\n";
    }
}

int
runCorpus(const Options &opt, ReplayTally &tally)
{
    std::vector<std::string> files;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(opt.corpusDir, ec)) {
        // Only .txt files hold linear conversion cases; the corpus
        // dir also carries .cute seeds in the cute layout format.
        if (entry.is_regular_file() &&
            entry.path().extension() == ".txt")
            files.push_back(entry.path().string());
    }
    if (ec) {
        std::cerr << "llstat: cannot read corpus dir " << opt.corpusDir
                  << ": " << ec.message() << "\n";
        return 1;
    }
    if (files.empty()) {
        std::cerr << "llstat: corpus dir " << opt.corpusDir
                  << " holds no case files\n";
        return 1;
    }
    std::sort(files.begin(), files.end());
    for (const auto &path : files) {
        check::ConversionCase c;
        try {
            c = check::readCaseFile(path);
        } catch (const std::exception &e) {
            std::cerr << "llstat: " << path << ": " << e.what() << "\n";
            return 1;
        }
        replayCase(c, c.summary.empty() ? path : c.summary,
                   opt.checkSpans, tally);
    }
    return 0;
}

/**
 * Run the kernel suite through the engine. With span checking on, every
 * live ConvertLayout op (tagged "convert:<kind>" or
 * "convert:unplanned" by planConversions) must have a "convert.op"
 * span whose "op" arg names its op index.
 */
int
runKernels(const Options &opt, ReplayTally &tally)
{
    int violations = 0;
    for (const auto &spec : kernels::allKernels()) {
        auto f = spec.build(spec.sizes.front());
        const size_t before = trace::eventCount();
        engine::LayoutEngine eng{engine::EngineOptions{}};
        auto stats = eng.run(f);
        tally.planned += stats.convertsPlanned;
        tally.planFailed += stats.planFailures;
        tally.execFailed += stats.execFailures;

        if (!opt.checkSpans)
            continue;
        auto events = trace::snapshotEvents();
        for (int i = 0; i < f.numOps(); ++i) {
            const auto &op = f.op(i);
            if (op.erased || op.kind != ir::OpKind::ConvertLayout)
                continue;
            const std::string want = std::to_string(i);
            bool found = false;
            for (size_t e = before; e < events.size(); ++e) {
                if (events[e].name != "convert.op")
                    continue;
                const std::string *idx = spanArg(events[e], "op");
                if (idx && *idx == want) {
                    found = true;
                    break;
                }
            }
            if (!found) {
                ++violations;
                std::cerr << "llstat: kernel " << spec.name << " op "
                          << i << " (" << op.tag
                          << ") has no convert.op span\n";
            }
        }
    }
    tally.spanViolations += violations;
    return 0;
}

/** The BENCH_<name>.json schema emitted by bench::emitBenchJson. */
bool
validateBenchReport(const std::string &path, const jsonlite::Value &v,
                    std::string &why)
{
    (void)path;
    if (!v.isObject()) {
        why = "root is not an object";
        return false;
    }
    const auto *name = v.find("name");
    if (!name || !name->isString() || name->str.empty()) {
        why = "\"name\" missing or not a non-empty string";
        return false;
    }
    const auto *reps = v.find("reps");
    if (!reps || !reps->isNumber() || reps->number < 1.0 ||
        reps->number != static_cast<double>(
                            static_cast<long long>(reps->number))) {
        why = "\"reps\" missing or not an integer >= 1";
        return false;
    }
    const auto *wall = v.find("wall_ms");
    if (!wall || !wall->isObject()) {
        why = "\"wall_ms\" missing or not an object";
        return false;
    }
    for (const char *field : {"median", "p90"}) {
        const auto *x = wall->find(field);
        if (!x || !x->isNumber() || x->number < 0.0) {
            why = std::string("\"wall_ms.") + field +
                  "\" missing or not a number >= 0";
            return false;
        }
    }
    const auto *metrics = v.find("metrics");
    if (!metrics || !metrics->isObject()) {
        why = "\"metrics\" missing or not an object";
        return false;
    }
    for (const auto &[key, val] : metrics->members) {
        if (!val.isNumber()) {
            why = "metric \"" + key + "\" is not a number";
            return false;
        }
    }
    if (name->str == "service") {
        // A service report must carry the terminal-outcome split —
        // a folded failure count hides sheds and deadline misses.
        double split[4] = {0, 0, 0, 0};
        const char *fields[4] = {
            "service.stream.planned", "service.stream.shed",
            "service.stream.deadline_exceeded",
            "service.stream.failed"};
        for (int i = 0; i < 4; ++i) {
            const auto *x = metrics->find(fields[i]);
            if (!x || !x->isNumber() || x->number < 0.0) {
                why = std::string("service report lacks \"") +
                      fields[i] + "\" (terminal-outcome split)";
                return false;
            }
            split[i] = x->number;
        }
        const auto *requests = metrics->find("service.stream.requests");
        if (!requests || !requests->isNumber()) {
            why = "service report lacks \"service.stream.requests\"";
            return false;
        }
        const double sum =
            split[0] + split[1] + split[2] + split[3];
        if (sum != requests->number) {
            why = "service outcome split does not sum to requests (" +
                  std::to_string(sum) + " vs " +
                  std::to_string(requests->number) + ")";
            return false;
        }
        std::cout << "llstat: service outcomes: planned " << split[0]
                  << ", shed " << split[1] << ", deadline-exceeded "
                  << split[2] << ", failed " << split[3] << "\n";
    }
    // A fig9 synth run must partition its eliminated-conversion count:
    // propagation-eliminated + synthesis-eliminated = eliminated. A
    // report that only carries the headline number hides whether the
    // search did anything. Counters are emitted as deltas with zeros
    // omitted, so an absent partition member reads as an exact 0 (a
    // run where synthesis eliminated nothing extra is still valid —
    // it just must sum).
    if (const auto *elim =
            metrics->find("synth.fig9.converts_eliminated")) {
        const auto *prop =
            metrics->find("synth.fig9.propagation_eliminated");
        const auto *syn = metrics->find("synth.fig9.synth_eliminated");
        if ((prop && !prop->isNumber()) || (syn && !syn->isNumber())) {
            why = "synth report carries a non-numeric member of the "
                  "propagation/synthesis partition";
            return false;
        }
        if (!prop && !syn) {
            why = "synth report lacks the propagation/synthesis "
                  "partition of synth.fig9.converts_eliminated";
            return false;
        }
        double propN = prop ? prop->number : 0;
        double synN = syn ? syn->number : 0;
        if (propN + synN != elim->number) {
            why = "synth eliminated partition does not sum (" +
                  std::to_string(propN) + " + " + std::to_string(synN) +
                  " vs " + std::to_string(elim->number) + ")";
            return false;
        }
        std::cout << "llstat: fig9 synth: eliminated " << elim->number
                  << " (propagation " << propN << " + synthesis " << synN
                  << ")\n";
    }
    return true;
}

int
runValidateBenchJson(const Options &opt)
{
    std::vector<std::string> files;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(opt.validateBenchDir, ec)) {
        if (!entry.is_regular_file())
            continue;
        const std::string base = entry.path().filename().string();
        if (base.rfind("BENCH_", 0) == 0 &&
            base.size() > 11 &&
            base.compare(base.size() - 5, 5, ".json") == 0)
            files.push_back(entry.path().string());
    }
    if (ec) {
        std::cerr << "llstat: cannot read " << opt.validateBenchDir
                  << ": " << ec.message() << "\n";
        return 1;
    }
    if (files.empty()) {
        std::cerr << "llstat: no BENCH_*.json found in "
                  << opt.validateBenchDir << "\n";
        return 1;
    }
    std::sort(files.begin(), files.end());
    int bad = 0;
    for (const auto &path : files) {
        std::ifstream is(path);
        std::ostringstream text;
        text << is.rdbuf();
        auto parsed = jsonlite::parse(text.str());
        if (!parsed.has_value()) {
            std::cerr << "llstat: " << path << ": malformed JSON\n";
            ++bad;
            continue;
        }
        std::string why;
        if (!validateBenchReport(path, *parsed, why)) {
            std::cerr << "llstat: " << path << ": " << why << "\n";
            ++bad;
            continue;
        }
        std::cout << "llstat: " << path << " ok\n";
    }
    std::cout << "llstat: validated " << files.size()
              << " bench report(s), " << bad << " invalid\n";
    return bad ? 1 : 0;
}

/** Span-taxonomy rung names a ledger record may carry. */
bool
isLedgerRung(const std::string &s)
{
    return s == "noop" || s == "register-permute" ||
           s == "warp-shuffle" || s == "shared-memory" ||
           s == "shared-padded" || s == "shared-scalar";
}

/**
 * One CalibrationRecord line against the schema ledger::Ledger writes
 * (DESIGN.md §16). `why` explains the first violation found.
 */
bool
validateLedgerRecord(const jsonlite::Value &v, std::string &why)
{
    if (!v.isObject()) {
        why = "line is not a JSON object";
        return false;
    }
    for (const char *field : {"src", "dst", "spec"}) {
        const auto *x = v.find(field);
        if (!x || !x->isString() || x->str.size() != 16) {
            why = std::string("\"") + field +
                  "\" missing or not a 16-hex-digit string";
            return false;
        }
        for (char c : x->str) {
            if (!((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))) {
                why = std::string("\"") + field +
                      "\" holds a non-hex character";
                return false;
            }
        }
    }
    const auto *elem = v.find("elem");
    if (!elem || !elem->isNumber() ||
        (elem->number != 1.0 && elem->number != 2.0 &&
         elem->number != 4.0 && elem->number != 8.0)) {
        why = "\"elem\" missing or not in {1,2,4,8}";
        return false;
    }
    for (const char *field : {"start_rung", "rung"}) {
        const auto *x = v.find(field);
        if (!x || !x->isString() || !isLedgerRung(x->str)) {
            why = std::string("\"") + field +
                  "\" missing or not a span-taxonomy rung name";
            return false;
        }
    }
    const auto *outcome = v.find("outcome");
    if (!outcome || !outcome->isString() ||
        (outcome->str != "accept" && outcome->str != "reject")) {
        why = "\"outcome\" missing or not accept/reject";
        return false;
    }
    const auto *reason = v.find("reason");
    if (!reason || !reason->isString()) {
        why = "\"reason\" missing or not a string";
        return false;
    }
    for (const char *field : {"terminal", "demoted", "deadline"}) {
        const auto *x = v.find(field);
        if (!x || !x->isBool()) {
            why = std::string("\"") + field +
                  "\" missing or not a boolean";
            return false;
        }
    }
    for (const char *field :
         {"predicted_cycles", "measured_cycles", "store_wf", "load_wf",
          "window_elems", "pad_interval", "pad_elems", "vec_bits"}) {
        const auto *x = v.find(field);
        if (!x || !x->isNumber() || x->number < 0.0) {
            why = std::string("\"") + field +
                  "\" missing or not a number >= 0";
            return false;
        }
    }
    return true;
}

int
runValidateLedger(const Options &opt)
{
    std::ifstream is(opt.validateLedgerPath);
    if (!is.good()) {
        std::cerr << "llstat: cannot open " << opt.validateLedgerPath
                  << "\n";
        return 1;
    }
    int bad = 0;
    int lineNo = 0;
    int records = 0;
    // Terminal-record count per planned conversion: the (src, dst,
    // elem, spec, start_rung) group. Exactly one terminal record each —
    // the ladder always ends somewhere, and only once.
    std::map<std::string, int> terminals;
    std::map<std::string, int> groupRecords;
    std::string line;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty())
            continue;
        ++records;
        auto parsed = jsonlite::parse(line);
        if (!parsed.has_value()) {
            std::cerr << "llstat: " << opt.validateLedgerPath << ":"
                      << lineNo << ": malformed JSON\n";
            ++bad;
            continue;
        }
        std::string why;
        if (!validateLedgerRecord(*parsed, why)) {
            std::cerr << "llstat: " << opt.validateLedgerPath << ":"
                      << lineNo << ": " << why << "\n";
            ++bad;
            continue;
        }
        const std::string key = parsed->find("src")->str + "|" +
                                parsed->find("dst")->str + "|" +
                                std::to_string(static_cast<int>(
                                    parsed->find("elem")->number)) +
                                "|" + parsed->find("spec")->str + "|" +
                                parsed->find("start_rung")->str;
        ++groupRecords[key];
        if (parsed->find("terminal")->boolean)
            ++terminals[key];
    }
    if (records == 0) {
        std::cerr << "llstat: " << opt.validateLedgerPath
                  << " holds no records\n";
        return 1;
    }
    for (const auto &[key, count] : groupRecords) {
        const auto it = terminals.find(key);
        const int n = it == terminals.end() ? 0 : it->second;
        if (n != 1) {
            std::cerr << "llstat: conversion " << key << " has " << n
                      << " terminal record(s), want exactly 1\n";
            ++bad;
        }
    }
    std::cout << "llstat: validated " << records << " ledger record(s) "
              << "across " << groupRecords.size()
              << " conversion(s), " << bad << " violation(s)\n";
    return bad ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseArgs(argc, argv, opt))
        return 2;

    if (!opt.validateBenchDir.empty()) {
        int rc = runValidateBenchJson(opt);
        if (rc != 0)
            return rc;
        if (opt.corpusDir.empty() && opt.caseFile.empty() &&
            !opt.kernels && opt.validateLedgerPath.empty())
            return 0;
    }

    if (!opt.validateLedgerPath.empty()) {
        int rc = runValidateLedger(opt);
        if (rc != 0)
            return rc;
        if (opt.corpusDir.empty() && opt.caseFile.empty() &&
            !opt.kernels)
            return 0;
    }

    // Span checking and explicit trace output both need the tracer on,
    // LL_TRACE or not.
    if (opt.checkSpans || !opt.tracePath.empty() || opt.traceReset)
        trace::setEnabled(true);
    if (!opt.tracePath.empty())
        trace::setOutputPath(opt.tracePath);

    ReplayTally tally;
    if (!opt.caseFile.empty()) {
        check::ConversionCase c;
        try {
            c = check::readCaseFile(opt.caseFile);
        } catch (const std::exception &e) {
            std::cerr << "llstat: " << e.what() << "\n";
            return 2;
        }
        replayCase(c, c.summary.empty() ? opt.caseFile : c.summary,
                   opt.checkSpans, tally);
    }
    if (!opt.corpusDir.empty()) {
        if (int rc = runCorpus(opt, tally))
            return rc;
    }
    if (opt.kernels) {
        if (int rc = runKernels(opt, tally))
            return rc;
    }

    std::cout << "llstat: " << tally.cases << " case(s) replayed, "
              << tally.planned << " planned, " << tally.planFailed
              << " plan failures, " << tally.execFailed
              << " exec failures\n";
    if (opt.checkSpans)
        std::cout << "llstat: span check "
                  << (tally.spanViolations ? "FAILED" : "ok") << " ("
                  << tally.spanViolations << " violation(s))\n";

    if (opt.traceReset) {
        const size_t events = trace::eventCount();
        const size_t dropped = trace::droppedCount();
        const bool wrote = trace::flushAndClear();
        std::cout << "llstat: trace buffer reset (" << events
                  << " event(s) and " << dropped
                  << " dropped discarded";
        if (wrote)
            std::cout << ", flushed to " << opt.tracePath << " first";
        std::cout << "; buffer now holds " << trace::eventCount()
                  << " event(s), " << trace::droppedCount()
                  << " dropped)\n";
    } else if (!opt.tracePath.empty()) {
        if (trace::flushToConfiguredPath())
            std::cout << "llstat: trace written to " << opt.tracePath
                      << " (" << trace::eventCount() << " events, "
                      << trace::droppedCount() << " dropped)\n";
        else
            std::cerr << "llstat: could not write trace to "
                      << opt.tracePath << "\n";
    }

    if (opt.metricsFormat == "text")
        metrics::Registry::instance().writeText(std::cout);
    else if (opt.metricsFormat == "json")
        metrics::Registry::instance().writeJson(std::cout);

    return tally.spanViolations ? 1 : 0;
}
