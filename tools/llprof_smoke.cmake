# Smoke-run the calibration pipeline end to end:
#   1. replay the seed corpus and the fig9 kernel suite through llstat
#      with LL_LEDGER set — every planned conversion must land in the
#      JSONL ledger;
#   2. llstat --validate-ledger: schema + exactly one terminal record
#      per planned conversion;
#   3. llserve over the same corpus with --ledger on 8 threads — the
#      coalesced service path must produce a schema-valid ledger too;
#   4. llprof over both ledgers must report per-rung MAPE and exit 0.
#
# Script arguments (via -D):
#   LLSTAT      path to the llstat binary
#   LLSERVE     path to the llserve binary
#   LLPROF      path to the llprof binary
#   CORPUS_DIR  seed corpus directory
#   OUT_DIR     scratch dir for the emitted ledgers

file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env
            "LL_LEDGER=${OUT_DIR}/ledger_llstat.jsonl"
            "${LLSTAT}" --corpus "${CORPUS_DIR}" --kernels
            --metrics none
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "llstat replay exited with ${rc}")
endif()
if(NOT EXISTS "${OUT_DIR}/ledger_llstat.jsonl")
    message(FATAL_ERROR "LL_LEDGER did not produce a ledger")
endif()

execute_process(
    COMMAND "${LLSTAT}"
            --validate-ledger "${OUT_DIR}/ledger_llstat.jsonl"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "ledger schema validation failed")
endif()

execute_process(
    COMMAND ${CMAKE_COMMAND} -E env "LL_BENCH_JSON_DIR=${OUT_DIR}"
            "${LLSERVE}" --corpus "${CORPUS_DIR}"
            --threads 8 --repeat 2 --shuffle
            --ledger "${OUT_DIR}/ledger_llserve.jsonl"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "llserve exited with ${rc}")
endif()

execute_process(
    COMMAND "${LLSTAT}"
            --validate-ledger "${OUT_DIR}/ledger_llserve.jsonl"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "llserve ledger schema validation failed")
endif()

execute_process(
    COMMAND "${LLPROF}"
            --ledger "${OUT_DIR}/ledger_llstat.jsonl"
            --ledger "${OUT_DIR}/ledger_llserve.jsonl"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out)
message("${out}")
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "llprof exited with ${rc}")
endif()
if(NOT out MATCHES "MAPE")
    message(FATAL_ERROR "llprof report lacks the per-rung MAPE table")
endif()
if(NOT out MATCHES "monotonicity")
    message(FATAL_ERROR "llprof report lacks the monotonicity section")
endif()
